// Batch execution spine: selection bitmaps, dictionary codes, and
// pooled row batches flow up the plan instead of dying at the scan.
//
// Three layers cooperate here:
//
//   - Batch / rowArena: the unit of flow. A Batch is a pooled header
//     over up to batchSize row slices; the rows themselves are carved
//     from arena slabs and NEVER recycled, so any consumer may retain
//     them indefinitely (drainSource keeps them in the Result, sorts
//     and joins buffer them). Only the header and its backing pointer
//     array return to the pool.
//
//   - batchSource / batchProducer: the operator contract. A batch
//     producer's NextBatch returns nil at end of input and otherwise a
//     non-empty batch valid until the producer's next NextBatch or
//     Close call. The max argument is the consumer's remaining-row
//     budget (LIMIT): producers use it to stop materializing mid-chunk;
//     it is a hint, so consumers still enforce exact limits.
//
//   - vector fast paths: when a pipeline breaker sits directly on a
//     scan whose key columns are IMC vector-backed, grouped aggregation
//     hashes uint32 dictionary codes (or float64 bits) instead of
//     rendered key strings, and hash joins build and probe in code
//     space, materializing only the rows that survive the join.
//
// All mutation of Batch internals lives in this file (the add/reset/
// truncate methods); fsdmvet's immutcheck enforces that no other file
// writes Batch fields, which is what makes the pooling safe to reason
// about.

package sqlengine

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/imc"
	"repro/internal/jsondom"
)

// batchSize is the row capacity of one batch, aligned with
// imc.ChunkSize so a batch scan drains at most one selection bitmap
// per NextBatch call.
const batchSize = imc.ChunkSize

// arenaSlabValues is the number of jsondom.Value slots carved per
// arena slab allocation (one alloc per ~8 batches of 8-column rows).
const arenaSlabValues = 8192

// Batch is a chunk of rows flowing between batch-aware operators.
// Headers are pooled: a batch returned by NextBatch is valid until the
// producer's next NextBatch or Close call. The row slices inside are
// freshly allocated (arena-carved) and safe to retain indefinitely.
type Batch struct {
	rows [][]jsondom.Value
}

// Len returns the number of rows in the batch; 0 on the nil batch, so
// stats wrappers can observe an end-of-input result directly.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.rows)
}

// Row returns row i. The returned slice outlives the batch header.
func (b *Batch) Row(i int) []jsondom.Value { return b.rows[i] }

// add appends one row.
func (b *Batch) add(row []jsondom.Value) { b.rows = append(b.rows, row) }

// truncate keeps the first n rows (a LIMIT cut), clearing the dropped
// pointers so the pooled header does not pin their rows.
func (b *Batch) truncate(n int) {
	if n >= len(b.rows) {
		return
	}
	tail := b.rows[n:]
	for i := range tail {
		tail[i] = nil
	}
	b.rows = b.rows[:n]
}

// reset empties the batch for pool reuse, clearing row pointers so a
// pooled header never pins rows from a finished query.
func (b *Batch) reset() {
	for i := range b.rows {
		b.rows[i] = nil
	}
	b.rows = b.rows[:0]
}

// batchPool recycles batch headers (the [][]jsondom.Value backing
// arrays), the only allocation a per-batch handoff would otherwise
// repeat. Rows are never pooled.
var batchPool = sync.Pool{
	New: func() any { return &Batch{rows: make([][]jsondom.Value, 0, batchSize)} },
}

func getBatch() *Batch { return batchPool.Get().(*Batch) }

// putBatch returns a batch header to the pool; nil is a no-op so
// producers can recycle their "previous batch" slot unconditionally.
func putBatch(b *Batch) {
	if b == nil {
		return
	}
	b.reset()
	batchPool.Put(b)
}

// rowArena carves per-row []jsondom.Value slices out of large slabs:
// one slab allocation serves arenaSlabValues/width rows. Carved rows
// use a full slice expression, so appending to one can never clobber a
// neighbor, and slabs are ordinary GC-managed memory — rows stay valid
// for as long as anything references them, which is what lets batch
// consumers retain them without a copy.
type rowArena struct {
	slab []jsondom.Value
}

// alloc carves an n-value row from the current slab.
func (a *rowArena) alloc(n int) []jsondom.Value {
	if n > len(a.slab) {
		size := arenaSlabValues
		if n > size {
			size = n
		}
		a.slab = make([]jsondom.Value, size)
	}
	row := a.slab[:n:n]
	a.slab = a.slab[n:]
	return row
}

// batchProducer delivers rows in batches. max > 0 is the consumer's
// remaining-row budget: producers use it to stop materializing
// mid-chunk (LIMIT pushdown), but it is a hint — consumers enforce
// exact truncation themselves. A non-nil result always holds at least
// one row; nil means end of input.
type batchProducer interface {
	NextBatch(ec *ExecCtx, max int) (*Batch, error)
}

// batchSource is a rowSource that can also deliver its output in
// batches. Parents pick one mode at Open and stick with it.
type batchSource interface {
	rowSource
	batchProducer
	// batchReady reports whether this execution will actually produce
	// batches — batch execution enabled for the plan and supported by
	// the operator's input. Callers fall back to Next when false.
	batchReady() bool
}

// batchInput returns in as an actually-batching source, or nil when
// the input cannot produce batches this execution.
func batchInput(in rowSource) batchSource {
	if b, ok := in.(batchSource); ok && b.batchReady() {
		return b
	}
	return nil
}

// rowNextFunc is the row-at-a-time pull signature shared by rowSource
// Next and batchCursor.next; pipeline breakers build through it so one
// loop serves both consumption modes.
type rowNextFunc func(*ExecCtx) ([]jsondom.Value, bool, error)

// batchNextFunc returns the pull function for a pipeline breaker's
// build loop: the input's batch drain when the input batches (and the
// operator's batch flag is on), its plain Next otherwise.
func batchNextFunc(in rowSource, batch bool) rowNextFunc {
	if batch {
		if b := batchInput(in); b != nil {
			cur := &batchCursor{src: b}
			return cur.next
		}
	}
	return in.Next
}

// batchCursor adapts NextBatch back to row-at-a-time pulls for
// pipeline breakers that consume batches but emit rows. It never
// recycles batches — the producer owns them.
type batchCursor struct {
	src   batchProducer
	cur   *Batch
	pos   int
	ticks int
}

func (c *batchCursor) next(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	for {
		if c.cur != nil && c.pos < c.cur.Len() {
			row := c.cur.Row(c.pos)
			c.pos++
			return row, true, nil
		}
		// a pruning producer can return many empty pulls back to back;
		// stay cancellable across them
		if err := ec.tickErr(&c.ticks); err != nil {
			return nil, false, err
		}
		b, err := c.src.NextBatch(ec, 0)
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		c.cur, c.pos = b, 0
	}
}

// rowBatcher bridges a row-at-a-time source into the batch contract
// for operators whose parent batches but whose input does not.
type rowBatcher struct {
	in    rowSource
	out   *Batch
	ticks int
}

func (r *rowBatcher) NextBatch(ec *ExecCtx, max int) (*Batch, error) {
	putBatch(r.out)
	r.out = nil
	lim := batchSize
	if max > 0 && max < lim {
		lim = max
	}
	b := getBatch()
	for b.Len() < lim {
		if err := ec.tickErr(&r.ticks); err != nil {
			putBatch(b)
			return nil, err
		}
		row, ok, err := r.in.Next(ec)
		if err != nil {
			putBatch(b)
			return nil, err
		}
		if !ok {
			break
		}
		b.add(row)
	}
	if b.Len() == 0 {
		putBatch(b)
		return nil, nil
	}
	r.out = b
	mBatchAdaptedRows.Add(int64(b.Len()))
	return b, nil
}

// ---------------------------------------------------------------------------
// table scan: batch production and id-only iteration

// batchReady reports whether the scan emits batches this plan.
func (s *tableScan) batchReady() bool { return s.batchOut }

// NextBatch materializes up to min(batchSize, max) surviving rows into
// a pooled batch. In bitmap mode the selection position persists
// across calls, so a LIMIT budget stops materialization mid-chunk and
// the next call (if any) resumes exactly where it left off.
func (s *tableScan) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if s.st != nil {
		t0 := time.Now()
		defer func() { s.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	putBatch(s.out)
	s.out = nil
	lim := batchSize
	if max > 0 && max < lim {
		lim = max
	}
	b = getBatch()
	for b.Len() < lim {
		row, ok, err := s.next1(ec)
		if err != nil {
			putBatch(b)
			return nil, err
		}
		if !ok {
			break
		}
		b.add(row)
	}
	if b.Len() == 0 {
		putBatch(b)
		return nil, nil
	}
	s.out = b
	mBatchBatches.Inc()
	mBatchRows.Add(int64(b.Len()))
	return b, nil
}

// detachBatch transfers ownership of the scan's current batch to the
// caller: the scan will not recycle it on its next NextBatch call.
// Parallel scan workers use this to hand batches across goroutines.
func (s *tableScan) detachBatch() { s.out = nil }

// idCapable reports whether the scan can run id-only iteration for the
// vector fast paths: full-range row-id order (no index postings, no
// sampling) and no row-level fallback predicate, so a row's survival
// is decided entirely before materialization. Valid only after Open.
func (s *tableScan) idCapable() bool {
	return s.rowIDs == nil && s.rng == nil && s.fallbackPred == nil
}

// nextSelID returns the next row id surviving the scan's vector
// predicates — the bitmap drain in batch-kernel mode, the filter
// closures otherwise — skipping deleted rows. Materialization is the
// caller's concern. Requires idCapable.
func (s *tableScan) nextSelID(ec *ExecCtx) (int, bool, error) {
	if s.batchActive {
		for {
			for s.selActive {
				i := s.sel.NextSet(s.selPos)
				if i < 0 {
					s.selActive = false
					break
				}
				s.selPos = i + 1
				rowID := s.chunkLo + i
				// bits below the partition floor (an unaligned lo) are not ours
				if rowID < s.lo || s.deleted(rowID) {
					continue
				}
				if !s.passVecFilters(rowID) {
					continue
				}
				return rowID, true, nil
			}
			ok, err := s.advanceChunk(ec)
			if err != nil || !ok {
				return 0, false, err
			}
		}
	}
	for {
		if err := ec.tickErr(&s.ticks); err != nil {
			return 0, false, err
		}
		if s.pos >= s.maxID {
			return 0, false, nil
		}
		rowID := s.pos
		s.pos++
		if s.deleted(rowID) || !s.passVecFilters(rowID) {
			continue
		}
		return rowID, true, nil
	}
}

// vectorFor resolves a column reference of the scan's schema to its
// populated IMC vector, the precondition for every code-space fast
// path. The scan's in-memory source must expose vectors (imc.Store
// does); a bare column name is required so the vector holds exactly
// the column the row path would materialize.
func (s *tableScan) vectorFor(c *ColRef) (*imc.Vector, bool) {
	type vecSource interface {
		Vector(name string) (*imc.Vector, bool)
	}
	vs, ok := s.sub.(vecSource)
	if !ok {
		return nil, false
	}
	i, err := s.sch.Resolve(c.Table, c.Name)
	if err != nil {
		return nil, false
	}
	return vs.Vector(s.cols[i].Name)
}

// ---------------------------------------------------------------------------
// filter / project / limit / alias: batch pass-through operators

func (f *filterOp) batchReady() bool { return f.batch && batchInput(f.in) != nil }

// NextBatch evaluates the predicate over whole input batches,
// compacting survivors into the filter's own pooled batch. The rows
// themselves pass through untouched.
func (f *filterOp) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if f.st != nil {
		t0 := time.Now()
		defer func() { f.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	putBatch(f.out)
	f.out = nil
	out := getBatch()
	for out.Len() == 0 {
		if err := ec.tickErr(&f.ticks); err != nil {
			putBatch(out)
			return nil, err
		}
		in, err := f.bin.NextBatch(ec, 0)
		if err != nil {
			putBatch(out)
			return nil, err
		}
		if in == nil {
			break
		}
		for i := 0; i < in.Len(); i++ {
			row := in.Row(i)
			f.ctx.row = row
			v, err := evalExpr(f.ctx, f.pred)
			if err != nil {
				putBatch(out)
				return nil, err
			}
			if truthy(v) {
				out.add(row)
			}
		}
	}
	if out.Len() == 0 {
		putBatch(out)
		return nil, nil
	}
	if max > 0 {
		out.truncate(max)
	}
	f.out = out
	return out, nil
}

func (p *projectOp) batchReady() bool { return p.batch && batchInput(p.in) != nil }

// NextBatch projects one input batch into arena-carved output rows —
// the projection is 1:1, so the consumer's row budget passes straight
// through to the input.
func (p *projectOp) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if p.st != nil {
		t0 := time.Now()
		defer func() { p.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	putBatch(p.out)
	p.out = nil
	in, err := p.bin.NextBatch(ec, max)
	if err != nil || in == nil {
		return nil, err
	}
	out := getBatch()
	for i := 0; i < in.Len(); i++ {
		p.ctx.row = in.Row(i)
		dst := p.arena.alloc(len(p.exprs))
		for j, e := range p.exprs {
			v, err := evalExpr(p.ctx, e)
			if err != nil {
				putBatch(out)
				return nil, err
			}
			dst[j] = v
		}
		out.add(dst)
	}
	p.out = out
	return out, nil
}

func (l *limitOp) batchReady() bool { return l.batch && batchInput(l.in) != nil }

// NextBatch threads the remaining-row budget into the input's batch
// materialization: a batch scan below stops materializing mid-chunk
// instead of building the whole final chunk and discarding the tail.
func (l *limitOp) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if l.st != nil {
		t0 := time.Now()
		defer func() { l.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	rem := l.limit - l.n
	if rem <= 0 {
		if !l.inClosed {
			l.inClosed = true
			if err := l.in.Close(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if max <= 0 || rem < max {
		max = rem
	}
	in, err := l.bin.NextBatch(ec, max)
	if err != nil || in == nil {
		return nil, err
	}
	in.truncate(rem)
	l.n += in.Len()
	return in, nil
}

func (w *aliasWrap) batchReady() bool { return batchInput(w.in) != nil }

// NextBatch passes the input's batches through unchanged; only the
// schema differs.
func (w *aliasWrap) NextBatch(ec *ExecCtx, max int) (*Batch, error) {
	return w.bin.NextBatch(ec, max)
}

// batchReady reports whether JSON_TABLE emits pooled batches this
// plan. Expansion output batches regardless of whether the left input
// does — the op re-rows its input anyway.
func (j *jsonTableOp) batchReady() bool { return j.batch }

// NextBatch expands documents directly into a pooled batch, cutting
// the per-row interface dispatch and pending-queue staging between
// JSON_TABLE and the aggregation above it — the Fig3 spine. Each
// document's rows are emitted whole, so a batch may overshoot max (the
// size hint contract allows it). The rows are arena-carved (batchEmit
// merges left+expansion through j.arena), so consumers may retain
// them; only the header is recycled on the next call.
func (j *jsonTableOp) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if j.st != nil {
		t0 := time.Now()
		defer func() { j.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	putBatch(j.out)
	j.out = nil
	lim := batchSize
	if max > 0 && max < lim {
		lim = max
	}
	out := getBatch()
	j.bsink = out
	defer func() { j.bsink = nil }()
	// drain rows a row-mode pull already staged before emitting fresh
	// documents straight into the batch
	for j.pi < len(j.pending) {
		out.add(j.pending[j.pi])
		j.pi++
	}
	for out.Len() < lim && !j.done {
		if err := ec.tickErr(&j.ticks); err != nil {
			putBatch(out)
			return nil, err
		}
		if j.left == nil {
			j.done = true
			if err := j.expandDoc(ec, nil, j.emitBatch); err != nil {
				putBatch(out)
				return nil, err
			}
			continue
		}
		row, ok, err := j.left.Next(ec)
		if err != nil {
			putBatch(out)
			return nil, err
		}
		if !ok {
			j.done = true
			continue
		}
		if err := j.expandDoc(ec, row, j.emitBatch); err != nil {
			putBatch(out)
			return nil, err
		}
	}
	if out.Len() == 0 {
		putBatch(out)
		return nil, nil
	}
	j.out = out
	return out, nil
}

// batchEmit merges one expansion row and appends it to the batch on
// loan from NextBatch (the pre-bound emit target of batch mode).
func (j *jsonTableOp) batchEmit(scratch []jsondom.Value) error {
	j.bsink.add(j.mergeRow(scratch))
	return nil
}

// ---------------------------------------------------------------------------
// grouped aggregation: the dictionary-code fast path

// aggFastKind classifies the aggregates the vector fast path computes
// without materializing rows.
type aggFastKind int

const (
	aggFastCountStar aggFastKind = iota
	aggFastCount
	aggFastSum
	aggFastAvg
	aggFastMin
	aggFastMax
)

// aggFastSpec is the execution-time plan of one fast-path aggregate:
// its kind and, for argument-taking aggregates, the vector the
// argument column is backed by. Built once per execution by
// newAggFastSpecs; read-only afterwards (shared with nothing, but the
// immutability keeps the accumulation loop free of aliasing hazards).
type aggFastSpec struct {
	kind aggFastKind
	vec  *imc.Vector
}

// newAggFastSpecs classifies the operator's aggregates for the vector
// fast path, resolving argument columns to scan vectors; ok=false
// declines (unsupported aggregate, non-column argument, argument not
// vector-backed, sum/avg over a string vector).
func newAggFastSpecs(g *groupAggOp, scan *tableScan) ([]aggFastSpec, bool) {
	specs := make([]aggFastSpec, len(g.aggs))
	for i, a := range g.aggs {
		if a.Star && a.Name == "count" {
			specs[i] = aggFastSpec{kind: aggFastCountStar}
			continue
		}
		if len(a.Args) != 1 {
			return nil, false
		}
		col, ok := a.Args[0].(*ColRef)
		if !ok {
			return nil, false
		}
		vec, ok := scan.vectorFor(col)
		if !ok {
			return nil, false
		}
		var kind aggFastKind
		switch a.Name {
		case "count":
			kind = aggFastCount
		case "sum":
			kind = aggFastSum
		case "avg":
			kind = aggFastAvg
		case "min":
			kind = aggFastMin
		case "max":
			kind = aggFastMax
		default:
			return nil, false
		}
		// sum/avg over a string vector would need the row path's
		// numeric-coercion semantics; decline
		if (kind == aggFastSum || kind == aggFastAvg) && !vec.IsNumber {
			return nil, false
		}
		specs[i] = aggFastSpec{kind: kind, vec: vec}
	}
	return specs, true
}

// fastAggState is the per-group accumulator for one fast-path
// aggregate: one count, one float sum, and one min/max slot in the
// vector's native representation (float64, or uint32 dictionary code —
// the dictionary is sorted, so code order is string order).
type fastAggState struct {
	count int64
	sum   float64
	num   float64
	code  uint32
	valid bool
}

// fastGroup is one group of the code-space aggregation: the id of its
// first row (materialized only at emit) and the accumulator per
// aggregate.
type fastGroup struct {
	reprID int
	states []fastAggState
}

// buildFast runs grouped aggregation in code space when the operator
// sits directly on an id-capable scan and both the single group key
// and every aggregate argument are vector-backed: the key hashes as a
// uint64 (dictionary code or float bits), aggregates accumulate from
// the vectors, and only one representative row per group is ever
// materialized. Returns ok=false (leaving no state behind) when the
// plan shape does not qualify, in which case the caller falls back to
// the generic build.
func (g *groupAggOp) buildFast(ec *ExecCtx) (ok bool, err error) {
	scan, isScan := g.in.(*tableScan)
	if !isScan || !scan.idCapable() || g.implicitGroup || len(g.groupBy) != 1 {
		return false, nil
	}
	keyCol, isCol := g.groupBy[0].(*ColRef)
	if !isCol {
		return false, nil
	}
	keyVec, haveVec := scan.vectorFor(keyCol)
	if !haveVec {
		return false, nil
	}
	specs, okSpecs := newAggFastSpecs(g, scan)
	if !okSpecs {
		return false, nil
	}

	newGroup := func(id int) *fastGroup {
		return &fastGroup{reprID: id, states: make([]fastAggState, len(specs))}
	}
	index := make(map[uint64]*fastGroup)
	var order []*fastGroup
	var nullGroup *fastGroup
	var rows int64
	ticks := 0
	for {
		if err := ec.tickErr(&ticks); err != nil {
			return true, err
		}
		id, more, err := scan.nextSelID(ec)
		if err != nil {
			return true, err
		}
		if !more {
			break
		}
		rows++
		var key uint64
		var keyNull bool
		if keyVec.IsNumber {
			n, okv := keyVec.NumAt(id)
			key, keyNull = math.Float64bits(n), !okv
		} else {
			c, okv := keyVec.CodeAt(id)
			key, keyNull = uint64(c), !okv
		}
		var grp *fastGroup
		if keyNull {
			if nullGroup == nil {
				nullGroup = newGroup(id)
				order = append(order, nullGroup)
			}
			grp = nullGroup
		} else {
			grp = index[key]
			if grp == nil {
				grp = newGroup(id)
				index[key] = grp
				order = append(order, grp)
			}
		}
		for i := range specs {
			sp := &specs[i]
			st := &grp.states[i]
			if sp.kind == aggFastCountStar {
				st.count++
				continue
			}
			if sp.vec.IsNumber {
				n, okv := sp.vec.NumAt(id)
				if !okv {
					continue
				}
				switch sp.kind {
				case aggFastCount:
					st.count++
				case aggFastSum, aggFastAvg:
					st.count++
					st.sum += n
					st.valid = true
				case aggFastMin:
					if !st.valid || n < st.num {
						st.num = n
					}
					st.valid = true
				case aggFastMax:
					if !st.valid || n > st.num {
						st.num = n
					}
					st.valid = true
				}
				continue
			}
			c, okv := sp.vec.CodeAt(id)
			if !okv {
				continue
			}
			switch sp.kind {
			case aggFastCount:
				st.count++
			case aggFastMin:
				if !st.valid || c < st.code {
					st.code = c
				}
				st.valid = true
			case aggFastMax:
				if !st.valid || c > st.code {
					st.code = c
				}
				st.valid = true
			}
		}
	}

	// emit in first-seen order, materializing one row per group
	for _, grp := range order {
		repr, _, err := scan.materialize(grp.reprID, scan.rows[grp.reprID])
		if err != nil {
			return true, err
		}
		n := rowBytes(repr) + 8
		if err := ec.grow(n); err != nil {
			return true, err
		}
		g.memUsed += n
		out := make([]jsondom.Value, 0, len(repr)+len(specs))
		out = append(out, repr...)
		for i := range specs {
			out = append(out, specs[i].result(&grp.states[i]))
		}
		g.groups = append(g.groups, out)
		scan.rowsOut++
	}
	mode := "float-bits"
	if !keyVec.IsNumber {
		mode = "dict-codes"
	}
	g.fastStat = fmt.Sprintf("agg-fast: key=%s rows=%d groups=%d", mode, rows, len(order))
	mAggFastRows.Add(rows)
	return true, nil
}

// result finalizes one accumulator with the row path's semantics:
// NULL for empty sum/avg/min/max, numeric normalization via
// NumberFromFloat so 1 and 1.0 render identically.
func (sp *aggFastSpec) result(st *fastAggState) jsondom.Value {
	switch sp.kind {
	case aggFastCountStar, aggFastCount:
		return jsondom.NumberFromInt(st.count)
	case aggFastSum:
		if !st.valid {
			return null
		}
		return jsondom.NumberFromFloat(st.sum)
	case aggFastAvg:
		if st.count == 0 {
			return null
		}
		return jsondom.NumberFromFloat(st.sum / float64(st.count))
	default: // min/max
		if !st.valid {
			return null
		}
		if sp.vec.IsNumber {
			return jsondom.NumberFromFloat(st.num)
		}
		return jsondom.String(sp.vec.DictStr(st.code))
	}
}

// ---------------------------------------------------------------------------
// hash join: code-space build and probe

// joinFast is the execution state of a code-space hash join: both
// sides are id-capable scans whose single key columns are
// vector-backed with directly comparable representations (two numeric
// vectors, or two string vectors sharing one dictionary). The build
// side stores materialized rows under uint64 keys; the probe side
// materializes a left row only when it matches (or, under left-outer
// semantics, misses).
type joinFast struct {
	h                 *hashJoin
	lscan, rscan      *tableScan
	lvec, rvec        *imc.Vector
	table             map[uint64][][]jsondom.Value
	pending           [][]jsondom.Value
	pi                int
	leftRow           []jsondom.Value
	probed, probeHits int64
	ticks             int
}

// newJoinFast qualifies the join for code-space probing after both
// inputs are open; nil means the plan shape does not qualify and the
// generic path runs.
func newJoinFast(h *hashJoin) *joinFast {
	lscan, okL := h.left.(*tableScan)
	rscan, okR := h.right.(*tableScan)
	if !okL || !okR || !lscan.idCapable() || !rscan.idCapable() {
		return nil
	}
	if len(h.leftKeys) != 1 || len(h.rightKeys) != 1 {
		return nil
	}
	lcol, okL := h.leftKeys[0].(*ColRef)
	rcol, okR := h.rightKeys[0].(*ColRef)
	if !okL || !okR {
		return nil
	}
	lvec, okL := lscan.vectorFor(lcol)
	rvec, okR := rscan.vectorFor(rcol)
	if !okL || !okR {
		return nil
	}
	// the two representations must agree for uint64 keys to be
	// comparable across sides
	if lvec.IsNumber != rvec.IsNumber {
		return nil
	}
	if !lvec.IsNumber && !lvec.SameDict(rvec) {
		return nil
	}
	return &joinFast{h: h, lscan: lscan, rscan: rscan, lvec: lvec, rvec: rvec}
}

// keyAt reads the join key for one row id in code space.
func keyAt(vec *imc.Vector, id int) (key uint64, ok bool) {
	if vec.IsNumber {
		n, okv := vec.NumAt(id)
		return math.Float64bits(n), okv
	}
	c, okv := vec.CodeAt(id)
	return uint64(c), okv
}

// build materializes the right input into the code-keyed hash table.
// NULL keys never participate, matching the row path.
func (jf *joinFast) build(ec *ExecCtx) error {
	jf.table = make(map[uint64][][]jsondom.Value)
	for {
		if err := ec.tickErr(&jf.ticks); err != nil {
			return err
		}
		id, more, err := jf.rscan.nextSelID(ec)
		if err != nil {
			return err
		}
		if !more {
			break
		}
		key, okKey := keyAt(jf.rvec, id)
		if !okKey {
			continue
		}
		row, _, err := jf.rscan.materialize(id, jf.rscan.rows[id])
		if err != nil {
			return err
		}
		jf.rscan.rowsOut++
		n := rowBytes(row) + 8
		if err := ec.grow(n); err != nil {
			return err
		}
		jf.h.memUsed += n
		jf.table[key] = append(jf.table[key], row)
	}
	mDictProbeBuilds.Inc()
	return nil
}

// next produces the join output rows: probe keys are read straight
// from the left vector, and a left row is materialized only once a
// match (or outer-join miss) makes it observable.
func (jf *joinFast) next(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	h := jf.h
	for {
		// inner-join probes can skip arbitrarily many key misses
		// between emitted rows; stay cancellable across them
		if err := ec.tickErr(&jf.ticks); err != nil {
			return nil, false, err
		}
		if jf.pi < len(jf.pending) {
			r := jf.pending[jf.pi]
			jf.pi++
			out := h.arena.alloc(len(jf.leftRow) + len(r))
			copy(out, jf.leftRow)
			copy(out[len(jf.leftRow):], r)
			if h.residual != nil {
				h.residCtx.row = out
				v, err := evalExpr(h.residCtx, h.residual)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return out, true, nil
		}
		id, more, err := jf.lscan.nextSelID(ec)
		if err != nil {
			return nil, false, err
		}
		if !more {
			mDictProbeRows.Add(jf.probed)
			jf.probed = 0
			return nil, false, nil
		}
		jf.probed++
		key, okKey := keyAt(jf.lvec, id)
		var matches [][]jsondom.Value
		if okKey {
			matches = jf.table[key]
		}
		if len(matches) == 0 {
			if !h.leftOuter {
				continue
			}
			row, _, err := jf.lscan.materialize(id, jf.lscan.rows[id])
			if err != nil {
				return nil, false, err
			}
			jf.lscan.rowsOut++
			out := h.arena.alloc(len(row) + len(h.right.Schema()))
			copy(out, row)
			for i := len(row); i < len(out); i++ {
				out[i] = null
			}
			return out, true, nil
		}
		jf.probeHits++
		row, _, err := jf.lscan.materialize(id, jf.lscan.rows[id])
		if err != nil {
			return nil, false, err
		}
		jf.lscan.rowsOut++
		jf.leftRow = row
		jf.pending, jf.pi = matches, 0
	}
}

// stat renders the fast join's EXPLAIN ANALYZE line.
func (jf *joinFast) stat() string {
	mode := "float-bits"
	if !jf.lvec.IsNumber {
		mode = "dict-codes"
	}
	return fmt.Sprintf("dictprobe: key=%s build-keys=%d probe-hits=%d", mode, len(jf.table), jf.probeHits)
}
