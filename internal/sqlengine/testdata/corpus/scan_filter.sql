-- Scan and filter corpus: vector-kernel-eligible predicates, dictionary
-- misses, NULL stretches, residual predicates, and raw JSON path
-- filters. Expected row counts are maintained by
--   go test ./internal/sqlengine -run TestQueryCorpus -update-corpus
-- against the reference configuration (text storage, row-at-a-time,
-- serial).

-- case: eq_number
-- rows: 1
select did from d where vn = 77 order by did;

-- case: eq_number_nullrow
-- rows: 0
select did from d where vn = 13 order by did;

-- case: between_number
-- rows: 75
select did from d where vn between 100 and 180 order by did;

-- case: between_reversed
-- rows: 0
select did from d where vn between 180 and 100 order by did;

-- case: ge_tail
-- rows: 46
select did from d where vn >= 1350 order by did;

-- case: lt_head_residual
-- rows: 18
select did from d where vn < 40 and mod(did, 2) = 0 order by did;

-- case: eq_string
-- rows: 61
select did from d where vs = 's05' order by did;

-- case: between_string
-- rows: 244
select did from d where vs between 's03' and 's06' order by did;

-- case: string_dict_miss
-- rows: 0
select did from d where vs = 'zz' order by did;

-- case: string_open_range
-- rows: 120
select did from d where vs > 's20' order by did;

-- case: is_null
-- rows: 108
select did from d where vn is null order by did;

-- case: is_not_null_head
-- rows: 27
select did from d where vn is not null and vn < 30 order by did;

-- case: group_and_range
-- rows: 18
select did, vg from d where vg = 'grp3' and vn > 1300 order by did;

-- case: nested_city
-- rows: 82
select did from d where vcity = 'c09' order by did;

-- case: decimal_price
-- rows: 28
select did from d where vprice = 7.25 order by did;

-- case: raw_path_zip
-- rows: 14
select did from d where json_value(jdoc, '$.addr.zip' returning number) = 10042 order by did;

-- case: exists_member
-- rows: 20
select did from d where json_exists(jdoc, '$.n') order by did limit 20;

-- case: not_exists_member
-- rows: 108
select did from d where not json_exists(jdoc, '$.n') order by did;

-- case: exists_array_index
-- rows: 466
select did from d where json_exists(jdoc, '$.items[2]') order by did;

-- case: ne_desc_limit
-- rows: 15
select did from d where vn != 0 order by did desc limit 15;

-- case: conj_two_vectors
-- rows: 24
select did from d where vs = 's07' and vn between 200 and 800 order by did;

-- case: disjunction_residual
-- rows: 113
select did from d where vs = 's01' or vn < 60 order by did;
