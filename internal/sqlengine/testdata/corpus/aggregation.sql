-- Grouped-aggregation corpus: dictionary-code and float-bits fast-path
-- shapes, declined shapes (expression keys, multi-key, non-vector
-- arguments), NULL aggregate semantics, and HAVING.

-- case: group_string_count
-- rows: 23
select vs, count(*) from d group by vs order by vs;

-- case: group_string_all_aggs
-- rows: 23
select vs, count(vn), sum(vn), avg(vn), min(vn), max(vn) from d group by vs order by vs;

-- case: group_minmax_string
-- rows: 5
select vg, min(vs), max(vs) from d group by vg order by vg;

-- case: group_number_key
-- rows: 46
select vn, count(*) from d where vn < 50 group by vn order by vn;

-- case: count_star
-- rows: 1
select count(*) from d;

-- case: count_sum_nulls
-- rows: 1
select count(vn), sum(vn) from d;

-- case: group_filtered_range
-- rows: 5
select vg, count(*) from d where vn between 200 and 900 group by vg order by vg;

-- case: group_expr_key
-- rows: 7
select mod(did, 7), count(*) from d group by mod(did, 7) order by mod(did, 7);

-- case: group_nonvector_arg
-- rows: 23
select vs, sum(did) from d group by vs order by vs;

-- case: group_nested_city
-- rows: 17
select vcity, count(*) from d group by vcity order by vcity;

-- case: group_avg_price
-- rows: 5
select vg, avg(vprice) from d group by vg order by vg;

-- case: group_residual_filter
-- rows: 23
select vs, count(*) from d where mod(did, 3) = 0 group by vs order by vs;

-- case: group_number_desc_limit
-- rows: 12
select vn, count(*) from d group by vn order by vn desc limit 12;

-- case: group_two_keys
-- rows: 115
select vg, vs, count(*) from d group by vg, vs order by vg, vs;

-- case: count_all_null
-- rows: 1
select count(*) from d where vn is null;

-- case: group_having
-- rows: 20
select vs, count(*) from d group by vs having count(*) > 60 order by vs;

-- case: group_sum_null_slice
-- rows: 23
select vs, sum(vn) from d where vn is null group by vs order by vs;

-- case: agg_over_join_key_range
-- rows: 23
select vs, min(vn), max(vn) from d where vn is not null group by vs order by vs;
