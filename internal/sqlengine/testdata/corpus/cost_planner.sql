-- Cost-planner corpus: multi-conjunct WHERE clauses and joins whose
-- plans the cost-based planner may reshape (conjunct reordering,
-- index-vs-vectorized access-path choice, hash-join build side). Every
-- query orders by a unique key so results are bit-for-bit comparable
-- across planner modes.

-- case: multi_conjunct_selective_last
-- rows: 11
select did from d where vn >= 100 and vs = 's07' and vg = 'grp2' order by did;

-- case: multi_conjunct_range_eq
-- rows: 14
select did from d where vprice < 10 and vcity = 'c05' and vn is not null order by did;

-- case: multi_conjunct_json_raw
-- rows: 14
select did from d where json_value(jdoc, '$.addr.zip' returning number) = 10007 and json_value(jdoc, '$.g') = 'grp2' order by did;

-- case: multi_conjunct_in_like
-- rows: 97
select did from d where vs in ('s01', 's05', 's09') and vcity like 'c0%' and vn > 50 order by did;

-- case: multi_conjunct_between_ne
-- rows: 238
select did from d where vn between 300 and 600 and vs != 's10' and vprice >= 5.25 order by did;

-- case: exists_then_eq_conjuncts
-- rows: 92
select did from d where json_exists(jdoc, '$.n') and vg = 'grp3' and vn < 500 order by did;

-- case: join_where_multi_conjunct
-- rows: 55
select l.lid, a.did from lk l join d a on l.vk = a.vs where a.vn < 300 and a.vg = 'grp0' and l.vw >= 0 order by l.lid, a.did;

-- case: join_small_right_side
-- rows: 100
select a.did, l.lid from d a join lk l on a.vs = l.vk where a.did < 100 order by a.did, l.lid;

-- case: left_join_multi_conjunct_on
-- rows: 26
select l.lid, a.did from lk l left join d a on l.vk = a.vs and a.vn < 100 and a.vg = 'grp2' order by l.lid, a.did;

-- case: join_agg_multi_conjunct
-- rows: 5
select a.vg, count(*) from d a join lk l on a.vs = l.vk where a.vn >= 0 and l.vw <= 200 group by a.vg order by a.vg;
