-- Sort and limit corpus: ORDER BY materialization through batch pulls,
-- LIMIT budget pushdown into batch production, NULL ordering, and
-- multi-key sorts.

-- case: sort_number_limit
-- rows: 30
select did, vn from d order by vn, did limit 30;

-- case: sort_string_desc_tiebreak
-- rows: 25
select did from d order by vs, did desc limit 25;

-- case: sort_desc_top10
-- rows: 10
select did from d where vn > 1000 order by vn desc limit 10;

-- case: limit_zero
-- rows: 0
select did from d order by did limit 0;

-- case: limit_oversized
-- rows: 61
select did from d where vs = 's01' order by did limit 1000;

-- case: sort_price_desc
-- rows: 18
select vprice, did from d order by vprice desc, did limit 18;

-- case: sort_expr_key
-- rows: 40
select did from d order by mod(did, 11), did limit 40;

-- case: sort_city_window
-- rows: 33
select did, vcity from d where vn between 30 and 700 order by vcity, did limit 33;

-- case: limit_exact_chunk_edge
-- rows: 1024
select did from d order by did limit 1024;

-- case: limit_mid_chunk
-- rows: 1000
select did from d where vn is not null or vn is null order by did limit 1000;

-- case: sort_nulls_last_probe
-- rows: 1400
select did, vn from d order by vn, did;

-- case: window_row_number
-- rows: 14
select did, row_number() over (order by did) from d where vn < 16 order by did limit 15;
