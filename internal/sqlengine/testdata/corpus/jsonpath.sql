-- JSON path corpus: JSON_TABLE expansion (batch left input feeding the
-- lateral expansion), scalar JSON_VALUE projections, and path filters
-- over nested members and arrays.

-- case: json_table_items
-- rows: 79
select a.did, jt.q, jt.part from d a, json_table(jdoc, '$.items[*]' columns (q number path '$.q', part varchar2(8) path '$.part')) jt where a.did < 40 order by a.did, jt.q;

-- case: json_table_group
-- rows: 7
select jt.part, count(*) from d, json_table(jdoc, '$.items[*]' columns (part varchar2(8) path '$.part')) jt group by jt.part order by jt.part;

-- case: json_value_city_projection
-- rows: 25
select did, json_value(jdoc, '$.addr.city') from d where did < 25 order by did;

-- case: json_value_array_elem
-- rows: 200
select did from d where json_value(jdoc, '$.items[0].part') = 'p3' order by did;

-- case: json_value_missing_member
-- rows: 10
select did, json_value(jdoc, '$.missing') from d where did < 10 order by did;

-- case: json_table_filtered_sum
-- rows: 5
select d.vg, sum(jt.q) from d, json_table(jdoc, '$.items[*]' columns (q number path '$.q')) jt where d.vn < 500 group by d.vg order by d.vg;

-- case: json_value_number_mixed_filter
-- rows: 57
select did, json_value(jdoc, '$.price' returning number) from d where vs = 's11' and did > 100 order by did;

-- case: json_table_join_sorted
-- rows: 20
select a.did, jt.part from d a, json_table(jdoc, '$.items[*]' columns (part varchar2(8) path '$.part')) jt where a.vn between 10 and 30 order by a.did, jt.part limit 20;

-- case: json_exists_nested
-- rows: 1400
select did from d where json_exists(jdoc, '$.addr.city') order by did;

-- case: json_value_zip_group
-- rows: 100
select json_value(jdoc, '$.addr.zip' returning number), count(*) from d group by json_value(jdoc, '$.addr.zip' returning number) order by json_value(jdoc, '$.addr.zip' returning number);
