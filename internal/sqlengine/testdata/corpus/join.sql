-- Join corpus: cross-table numeric equi-joins (code-space probe in the
-- IMC configuration), string self-joins sharing one dictionary, outer
-- joins with probe misses, residuals, and joins feeding aggregation.

-- case: join_lookup_string
-- rows: 40
select l.lid, a.did from lk l join d a on l.vk = a.vs where a.did < 40 order by l.lid, a.did;

-- case: join_lookup_agg
-- rows: 23
select l.lid, count(*) from lk l join d a on l.vk = a.vs group by l.lid order by l.lid;

-- case: left_join_lookup_residual
-- rows: 32
select l.lid, a.did from lk l left join d a on l.vk = a.vs and a.did < 25 order by l.lid, a.did;

-- case: self_join_number
-- rows: 27
select a.did, b.did from d a join d b on a.vn = b.vn where a.did < 30 order by a.did, b.did;

-- case: self_join_string_bounded
-- rows: 8
select a.did, b.did from d a join d b on a.vs = b.vs and b.did < 8 where a.did < 8 order by a.did, b.did;

-- case: left_self_join_number
-- rows: 102
select a.did, b.did from d a left join d b on a.vn = b.vn and b.did < 100 where a.did < 120 order by a.did, b.did;

-- case: self_join_string_agg
-- rows: 23
select a.vs, count(*) from d a join d b on a.vs = b.vs and b.did < 23 group by a.vs order by a.vs;

-- case: join_number_cross_table
-- rows: 27
select a.did, l.lid from d a join lk l on a.vn = l.vw where a.did < 300 order by a.did, l.lid;

-- case: left_join_number_cross_table
-- rows: 30
select l.lid, a.did from lk l left join d a on l.vw = a.vn order by l.lid, a.did;

-- case: join_raw_path_key
-- rows: 40
select l.lid, a.did from lk l join d a on json_value(l.jdoc, '$.k') = a.vs where a.did < 40 order by l.lid, a.did;

-- case: join_then_sort_limit
-- rows: 17
select a.did, b.did from d a join d b on a.vn = b.vn where a.vn between 60 and 90 order by a.did desc limit 17;

-- case: join_residual_price
-- rows: 40
select a.did, b.did from d a join d b on a.vs = b.vs and b.vprice > 40 where a.did < 12 order by a.did, b.did limit 40;
