// Tests for the execution-context plumbing: cooperative
// cancellation/timeout, goroutine hygiene of parallel scans, the
// memory accountant, early termination, and EXPLAIN [ANALYZE].

package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/jsondom"
	"repro/internal/store"
)

// newNumEngine builds an engine with a single-column numeric table of
// n rows via the bulk-load fast path.
func newNumEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e := New()
	mustExec(t, e, `create table nums (n number)`)
	for i := 0; i < n; i++ {
		if err := e.InsertRow("nums", store.Row{jsondom.NumberFromInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestQueryContextCancelMidFlight(t *testing.T) {
	e := newNumEngine(t, 3000)
	// 3000x3000 cross join: far too much work to finish before the
	// cancellation fires.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var canceledAt time.Time
	go func() {
		_, err := e.QueryContext(ctx, `select count(*) from nums a, nums b where a.n + b.n = -1`)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	canceledAt = time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if d := time.Since(canceledAt); d > 100*time.Millisecond {
			t.Fatalf("cancellation took %s (> 100ms)", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not observe cancellation")
	}
	// the engine stays consistent: the same catalog answers fresh
	// queries normally after the aborted one
	r := mustExec(t, e, `select count(*) from nums`)
	if got := r.Rows[0][0].(jsondom.Number); got != "3000" {
		t.Fatalf("post-cancel count = %s", got)
	}
}

func TestQueryContextTimeout(t *testing.T) {
	e := newNumEngine(t, 3000)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := e.QueryContext(ctx, `select count(*) from nums a, nums b where a.n * b.n = -1`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestDMLContextCancel(t *testing.T) {
	e := newNumEngine(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecContext(ctx, `delete from nums where n >= 0`); !errors.Is(err, context.Canceled) {
		t.Fatalf("delete: want context.Canceled, got %v", err)
	}
	if _, err := e.ExecContext(ctx, `update nums set n = n + 1 where n >= 0`); !errors.Is(err, context.Canceled) {
		t.Fatalf("update: want context.Canceled, got %v", err)
	}
	// the aborted DML must not have touched any rows
	r := mustExec(t, e, `select count(*) from nums`)
	if got := r.Rows[0][0].(jsondom.Number); got != "2000" {
		t.Fatalf("post-cancel count = %s", got)
	}
}

func TestParallelScanEquivalence(t *testing.T) {
	e := newNumEngine(t, 5000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	q := `select n, n * 2 from nums where n > 100 and n < 4900 order by n desc limit 1000`
	qs := []string{q, `select count(*), sum(n) from nums where n >= 2500`,
		`select n from nums where n < 64`}
	for _, sql := range qs {
		e.Planner.DisableParallelScan = true
		serial := mustExec(t, e, sql)
		e.Planner.DisableParallelScan = false
		par := mustExec(t, e, sql)
		if len(par.Rows) != len(serial.Rows) {
			t.Fatalf("%s: %d parallel rows vs %d serial", sql, len(par.Rows), len(serial.Rows))
		}
		for i := range serial.Rows {
			for j := range serial.Rows[i] {
				if !jsondom.Equal(serial.Rows[i][j], par.Rows[i][j]) {
					t.Fatalf("%s: row %d col %d: %v vs %v", sql, i, j, serial.Rows[i][j], par.Rows[i][j])
				}
			}
		}
	}
}

func TestParallelScanUnorderedMultiset(t *testing.T) {
	e := newNumEngine(t, 5000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	sql := `select n from nums where n >= 1000 and n < 4000`
	e.Planner.DisableParallelScan = true
	serial := mustExec(t, e, sql)
	e.Planner.DisableParallelScan = false
	e.Planner.ParallelUnordered = true
	par := mustExec(t, e, sql)
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("%d parallel rows vs %d serial", len(par.Rows), len(serial.Rows))
	}
	seen := make(map[string]int)
	for _, r := range serial.Rows {
		seen[string(r[0].(jsondom.Number))]++
	}
	for _, r := range par.Rows {
		seen[string(r[0].(jsondom.Number))]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("multiset mismatch at %s: %+d", k, v)
		}
	}
}

func TestParallelScanNoGoroutineLeak(t *testing.T) {
	e := newNumEngine(t, 5000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	baseline := runtime.NumGoroutine()
	// full drain, early termination via LIMIT, and cancellation: all
	// three paths must stop every worker
	mustExec(t, e, `select count(*) from nums where n >= 0`)
	mustExec(t, e, `select n from nums where n >= 0 limit 3`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, `select n from nums where n >= 0`); err == nil {
		t.Fatal("cancelled parallel query should fail")
	}
	waitGoroutines(t, baseline)
}

func TestLimitClosesUpstreamEarly(t *testing.T) {
	e := newNumEngine(t, 2000)
	// LIMIT over a cross join: correctness of early close (double
	// close must be safe, results exact)
	r := mustExec(t, e, `select a.n from nums a, nums b limit 5`)
	if len(r.Rows) != 5 {
		t.Fatalf("limit rows = %d", len(r.Rows))
	}
	// LIMIT over ORDER BY: sortOp closes its input after materializing
	r = mustExec(t, e, `select n from nums order by n desc limit 2`)
	if len(r.Rows) != 2 || r.Rows[0][0].(jsondom.Number) != "1999" {
		t.Fatalf("order/limit rows = %v", r.Rows)
	}
}

func TestMemoryBudget(t *testing.T) {
	e := newNumEngine(t, 1000)
	e.Planner.MemoryBudget = 1024 // far below 1000 buffered rows
	_, err := e.Exec(`select n from nums order by n`)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("sort: want ErrMemoryBudget, got %v", err)
	}
	_, err = e.Exec(`select count(*) from nums group by n`)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("group by: want ErrMemoryBudget, got %v", err)
	}
	// streaming plans stay under any budget
	e.Planner.MemoryBudget = 64
	r := mustExec(t, e, `select count(*) from nums where n >= 0`)
	if got := r.Rows[0][0].(jsondom.Number); got != "1000" {
		t.Fatalf("count under budget = %s", got)
	}
}

func TestExplain(t *testing.T) {
	e := newPOEngine(t)
	r := mustExec(t, e, `explain select did from po where did > 1 order by did`)
	plan := ""
	for _, row := range r.Rows {
		plan += string(row[0].(jsondom.String)) + "\n"
	}
	for _, want := range []string{"Project", "Sort", "Filter", "TableScan(po"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	if strings.Contains(plan, "(rows=") {
		t.Fatalf("plain EXPLAIN should not carry runtime stats:\n%s", plan)
	}
	if !strings.Contains(plan, "est-rows=") {
		t.Fatalf("plain EXPLAIN should carry cardinality estimates:\n%s", plan)
	}
}

func TestExplainAnalyze(t *testing.T) {
	e := newPOEngine(t)
	r := mustExec(t, e, `explain analyze select did, json_value(jdoc, '$.purchaseOrder.id') from po`)
	sawRows := false
	for _, row := range r.Rows {
		line := string(row[0].(jsondom.String))
		if strings.HasPrefix(line, "plan cache:") {
			continue // cache-status annotation, not an operator line
		}
		if !strings.Contains(line, "(rows=") || !strings.Contains(line, "time=") {
			t.Fatalf("analyze line missing stats: %q", line)
		}
		if strings.Contains(line, "(rows=3") {
			sawRows = true
		}
	}
	if !sawRows {
		t.Fatalf("no operator reported 3 rows: %v", r.Rows)
	}
}

func TestExplainAnalyzeParallel(t *testing.T) {
	e := newNumEngine(t, 4000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	r := mustExec(t, e, `explain analyze select count(*) from nums where n >= 2000`)
	plan := ""
	for _, row := range r.Rows {
		plan += string(row[0].(jsondom.String)) + "\n"
	}
	if !strings.Contains(plan, "ParallelScan(nums degree=4 ordered filtered)") {
		t.Fatalf("plan missing parallel scan:\n%s", plan)
	}
	if !strings.Contains(plan, "rows=2000") {
		t.Fatalf("parallel scan rows-out missing:\n%s", plan)
	}
}

func TestQueryIDsAdvance(t *testing.T) {
	a := newExecCtx(context.Background(), 0)
	b := newExecCtx(nil, 0)
	if a.QueryID() == b.QueryID() {
		t.Fatal("query ids must be unique")
	}
	if b.Context() == nil || b.Err() != nil {
		t.Fatal("nil ctx must default to Background")
	}
}

func TestTickErrInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := newExecCtx(ctx, 0)
	ticks := 0
	var err error
	n := 0
	for ; err == nil && n < 10*cancelCheckInterval; n++ {
		err = ec.tickErr(&ticks)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("tickErr never surfaced cancellation: %v", err)
	}
	if n > cancelCheckInterval {
		t.Fatalf("cancellation after %d ticks (interval %d)", n, cancelCheckInterval)
	}
}

func TestParallelDegreeRespectsPartitionCount(t *testing.T) {
	e := newNumEngine(t, 10)
	e.Planner.ParallelDegree = 64
	e.Planner.ParallelMinRows = 1
	// 64-way split of 10 rows yields 10 single-row partitions; results
	// must still be exact and ordered
	r := mustExec(t, e, `select n from nums where n != 5`)
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, want := range []string{"0", "1", "2", "3", "4", "6", "7", "8", "9"} {
		if got := r.Rows[i][0].(jsondom.Number); string(got) != want {
			t.Fatalf("row %d = %s, want %s", i, got, want)
		}
	}
}

func TestParallelScanSkipsDeletedRows(t *testing.T) {
	e := newNumEngine(t, 2000)
	mustExec(t, e, `delete from nums where n >= 500 and n < 1500`)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	r := mustExec(t, e, `select count(*) from nums where n >= 0`)
	if got := r.Rows[0][0].(jsondom.Number); got != "1000" {
		t.Fatalf("count after delete = %s", got)
	}
}

func TestParallelScanConcurrentQueries(t *testing.T) {
	e := newNumEngine(t, 5000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(k int) {
			r, err := e.Query(fmt.Sprintf(`select count(*) from nums where n >= %d`, k*100))
			if err == nil && string(r.Rows[0][0].(jsondom.Number)) != fmt.Sprint(5000-k*100) {
				err = fmt.Errorf("count = %s", r.Rows[0][0].(jsondom.Number))
			}
			errc <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
