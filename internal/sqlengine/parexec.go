// Morsel-driven parallelism above the scan. PR1's parallelScanOp
// fans the leaf out across partition workers but funnels every row
// through a single-goroutine aggregation/join/sort; the operators in
// this file push the work itself into the workers:
//
//   - parallel grouped aggregation: each worker runs a private
//     partial-aggregate table (the code-space buildFast layout when
//     the plan qualifies, the generic rendered-key layout otherwise)
//     over its partition, and a single-pass merge in partition order
//     combines the partials — first-seen group order and the all-NULL
//     group come out exactly as the serial build produces them.
//
//   - parallel hash-join probe: the build side is constructed once
//     into a read-only shared table (dict-code/float-bits fast table
//     or the generic rendered-key table), then probe partitions are
//     joined in place by workers that emit fully-joined batches over
//     per-worker channels, merged in partition order.
//
//   - parallel sort: workers materialize, key, and sort per-partition
//     runs; Next streams a k-way merge of the runs with ties broken
//     by partition index, which reproduces the serial stable sort
//     exactly while keeping LIMIT budgets (stop pulling) and early
//     Close (stop + join workers) intact.
//
// Workers share no mutable state: each owns its scan clone, pipeline
// clone, evalCtx, arena, and tick counter. Shared plan state (Exprs,
// pathengine.Compiled, IMC vectors, the build table after its single
// construction) is immutable during evaluation — the same contract
// parallelScanOp relies on. Memory is charged per worker through the
// shared atomic budget (ExecCtx.grow), and released once by the
// operator's Close.
package sqlengine

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/jsondom"
)

// defaultParallelExecMinRows is the estimated input size below which
// parallel aggregation/probe/sort is not worth the fan-out overhead;
// deliberately higher than defaultParallelMinRows because the upper
// operators amortize less per row than the scan does.
const defaultParallelExecMinRows = 2048

// ---------------------------------------------------------------------------
// pipeline discovery

// parPipe describes how to rebuild an operator's input as K
// independent per-partition pipelines: a partitionable base scan, the
// residual filter a parallelScanOp had absorbed (nil otherwise), and
// the chain of per-row operators between the operator and the base
// (outermost first). Each worker gets a fresh clone of the chain over
// a cloneForRange slice of the base, so no execution state is shared.
type parPipe struct {
	base   *tableScan
	filter Expr
	chain  []rowSource
	degree int
}

// findParPipe walks down from an operator's input looking for a
// partitionable pipeline. Only operators whose execution is a pure
// per-row function of their input may sit on the path (filters, alias
// wraps, JSON_TABLE expansion); pipeline breakers, index-driven scans,
// and sampling scans decline. A parallelScanOp base is absorbed — its
// template and residual filter replace it, so the scan fan-out and the
// operator fan-out collapse into one set of workers. nil means the
// operator must stay serial.
func findParPipe(src rowSource, degree int) *parPipe {
	if degree < 2 {
		return nil
	}
	pp := &parPipe{degree: degree}
	for {
		switch t := src.(type) {
		case *tableScan:
			if t.rowIDsFn != nil || t.samplePct > 0 {
				return nil
			}
			pp.base = t
			return pp
		case *parallelScanOp:
			// ordered merge only: the unordered merge already gave up
			// deterministic row order, but partial-agg merge and sort
			// tie-breaks are defined in partition order
			if t.unordered {
				return nil
			}
			if t.template.rowIDsFn != nil || t.template.samplePct > 0 {
				return nil
			}
			pp.base = t.template
			pp.filter = t.filter
			return pp
		case *filterOp:
			pp.chain = append(pp.chain, t)
			src = t.in
		case *aliasWrap:
			pp.chain = append(pp.chain, t)
			src = t.in
		case *jsonTableOp:
			if t.left == nil {
				return nil
			}
			pp.chain = append(pp.chain, t)
			src = t.left
		default:
			return nil
		}
	}
}

// partitions returns the chunk-aligned worker ranges for the base
// scan, or nil when the split degenerates to fewer than two workers.
func (pp *parPipe) partitions() [][2]int {
	parts := scanPartitions(pp.base, pp.degree)
	if len(parts) < 2 {
		return nil
	}
	return parts
}

// workerSource rebuilds the pipeline over one partition of the base:
// a range clone of the scan, the absorbed parallel-scan residual as a
// worker-local filter, then fresh clones of the chain operators from
// the inside out. Clones share only immutable plan state (predicates,
// schemas, compiled paths); all execution state is per worker.
func (pp *parPipe) workerSource(lo, hi int, env *planEnv) rowSource {
	src := rowSource(pp.base.cloneForRange(lo, hi))
	if pp.filter != nil {
		src = &filterOp{in: src, pred: pp.filter, env: env, batch: pp.base.batchOut}
	}
	for i := len(pp.chain) - 1; i >= 0; i-- {
		switch t := pp.chain[i].(type) {
		case *filterOp:
			src = &filterOp{in: src, pred: t.pred, env: env, batch: t.batch}
		case *aliasWrap:
			src = &aliasWrap{in: src, alias: t.alias, sch: t.sch}
		case *jsonTableOp:
			src = &jsonTableOp{left: src, ref: t.ref, sch: t.sch, env: env,
				preFilters: t.preFilters, preSpecs: t.preSpecs, batch: t.batch}
		}
	}
	return src
}

// ---------------------------------------------------------------------------
// worker-fleet plumbing

// parFleet is the shared coordination state of one parallel-operator
// worker fleet: a WaitGroup joined by Close and an abort channel that
// stops every worker early on the first error, an early Close (LIMIT),
// or cancellation.
type parFleet struct {
	wg       sync.WaitGroup
	abort    chan struct{}
	stopOnce sync.Once
}

func newParFleet() *parFleet { return &parFleet{abort: make(chan struct{})} }

// stop makes every worker's next aborted() check true and unblocks
// workers parked on a full channel send.
func (f *parFleet) stop() { f.stopOnce.Do(func() { close(f.abort) }) }

// aborted is the per-iteration worker check; cheap enough for row
// loops (one channel poll, same cost parallelScanOp workers pay).
func (f *parFleet) aborted() bool {
	select {
	case <-f.abort:
		return true
	default:
		return false
	}
}

// send delivers r unless the fleet is stopping; a worker blocked on a
// full channel unblocks through the abort case.
func (f *parFleet) send(ch chan parRow, r parRow) bool {
	select {
	case ch <- r:
		return true
	case <-f.abort:
		return false
	}
}

// close stops the fleet and joins the workers. Safe to call multiple
// times; after it returns no worker goroutine is left running.
func (f *parFleet) close() {
	f.stop()
	f.wg.Wait()
}

// ---------------------------------------------------------------------------
// parallel grouped aggregation

// parAggPartial is one worker's generic partial-aggregation result:
// its private group table in first-seen order plus the rows consumed
// and memory charged, read by the merge only after the worker is done.
type parAggPartial struct {
	index map[string]*groupState
	order []string
	rows  int64
	mem   int64
	err   error
}

// parFastPartial is one worker's code-space partial result: groups in
// first-seen order with their uint64 keys, null-group flag, and the
// representative rows materialized inside the worker (while its scan
// clone was open).
type parFastPartial struct {
	order  []*fastGroup
	keys   []uint64
	isNull []bool
	reprs  [][]jsondom.Value
	rows   int64
	mem    int64
	err    error
}

// buildParallel runs the grouped aggregation across partition workers;
// ok=false leaves no state behind and the caller falls back to the
// serial build. The merge consumes partials in partition order, which
// makes the combined first-seen group order identical to the serial
// scan's: a group's first row in partition order is its first row in
// row order, because partitions are contiguous ascending row ranges.
func (g *groupAggOp) buildParallel(ec *ExecCtx) (bool, error) {
	pp := findParPipe(g.in, g.parDegree)
	if pp == nil {
		return false, nil
	}
	parts := pp.partitions()
	if parts == nil {
		return false, nil
	}
	if ok, err := g.buildParFast(ec, pp, parts); ok || err != nil {
		return ok, err
	}
	return g.buildParGeneric(ec, pp, parts)
}

// parFastQualifies re-runs the buildFast qualification against a
// zero-row clone of the base scan: the vectors and aggregate specs it
// resolves are chunk-independent, so one probe answers for every
// partition. The clone is opened (idCapable needs the Open-time
// snapshot) and closed before any worker starts.
func (g *groupAggOp) parFastQualifies(ec *ExecCtx, pp *parPipe) (keyCol *ColRef, specs []aggFastSpec, ok bool, err error) {
	if len(pp.chain) != 0 || pp.filter != nil || !g.batch || g.implicitGroup || len(g.groupBy) != 1 {
		return nil, nil, false, nil
	}
	keyCol, isCol := g.groupBy[0].(*ColRef)
	if !isCol {
		return nil, nil, false, nil
	}
	probe := pp.base.cloneForRange(0, 0)
	if err := probe.Open(ec); err != nil {
		return nil, nil, false, err
	}
	defer probe.Close() //nolint:errcheck // zero-row probe clone
	if !probe.idCapable() {
		return nil, nil, false, nil
	}
	if _, haveVec := probe.vectorFor(keyCol); !haveVec {
		return nil, nil, false, nil
	}
	specs, okSpecs := newAggFastSpecs(g, probe)
	if !okSpecs {
		return nil, nil, false, nil
	}
	return keyCol, specs, true, nil
}

// buildParFast is the parallel code-space aggregation: each worker
// accumulates a private fastGroup table over its partition and
// materializes its representative rows before closing its scan; the
// merge walks partials in partition order, adopting unseen groups and
// folding seen ones with mergeFastState.
func (g *groupAggOp) buildParFast(ec *ExecCtx, pp *parPipe, parts [][2]int) (bool, error) {
	keyCol, specs, ok, err := g.parFastQualifies(ec, pp)
	if !ok || err != nil {
		return false, err
	}
	fleet := newParFleet()
	partials := make([]parFastPartial, len(parts))
	fleet.wg.Add(len(parts))
	for i, part := range parts {
		scan := pp.base.cloneForRange(part[0], part[1])
		go g.parFastWorker(ec, fleet, scan, keyCol, specs, &partials[i])
	}
	fleet.wg.Wait()

	type mergedGroup struct {
		fg   *fastGroup
		repr []jsondom.Value
	}
	var rows, partialGroups int64
	index := make(map[uint64]*mergedGroup)
	var order []*mergedGroup
	var nullGroup *mergedGroup
	for pi := range partials {
		p := &partials[pi]
		g.memUsed += p.mem // charged by the worker; released at Close
		if p.err != nil {
			return true, p.err
		}
		rows += p.rows
		partialGroups += int64(len(p.order))
		for i, fg := range p.order {
			var dst *mergedGroup
			if p.isNull[i] {
				if nullGroup == nil {
					nullGroup = &mergedGroup{fg: fg, repr: p.reprs[i]}
					order = append(order, nullGroup)
					continue
				}
				dst = nullGroup
			} else {
				dst = index[p.keys[i]]
				if dst == nil {
					m := &mergedGroup{fg: fg, repr: p.reprs[i]}
					index[p.keys[i]] = m
					order = append(order, m)
					continue
				}
			}
			for si := range specs {
				mergeFastState(&dst.fg.states[si], &fg.states[si], &specs[si])
			}
		}
	}
	for _, m := range order {
		out := make([]jsondom.Value, 0, len(m.repr)+len(specs))
		out = append(out, m.repr...)
		for i := range specs {
			out = append(out, specs[i].result(&m.fg.states[i]))
		}
		g.groups = append(g.groups, out)
	}
	mode := "float-bits"
	if kv, okv := pp.base.vectorFor(keyCol); okv && !kv.IsNumber {
		mode = "dict-codes"
	}
	g.parStat = fmt.Sprintf("par-agg: mode=%s workers=%d rows=%d partial-groups=%d merged-groups=%d",
		mode, len(parts), rows, partialGroups, len(order))
	mAggFastRows.Add(rows)
	mParExecOps.Inc()
	mParExecWorkers.Add(int64(len(parts)))
	mParExecPartialGroups.Add(partialGroups)
	mParExecMergedGroups.Add(int64(len(order)))
	return true, nil
}

// parFastWorker accumulates one partition's code-space partial. It
// mirrors buildFast's accumulation loop exactly (same key extraction,
// same per-aggregate switches) over a range clone of the scan, then
// materializes one representative row per group while the clone is
// still open.
func (g *groupAggOp) parFastWorker(ec *ExecCtx, fleet *parFleet, scan *tableScan, keyCol *ColRef, specs []aggFastSpec, out *parFastPartial) {
	defer fleet.wg.Done()
	fail := func(err error) {
		out.err = err
		fleet.stop()
	}
	if err := scan.Open(ec); err != nil {
		fail(err)
		return
	}
	defer scan.Close() //nolint:errcheck // flushes the clone's row count
	keyVec, haveVec := scan.vectorFor(keyCol)
	if !haveVec {
		fail(fmt.Errorf("parallel agg: key vector vanished at execution"))
		return
	}
	index := make(map[uint64]*fastGroup)
	nullIdx := -1
	ticks := 0
	for {
		if fleet.aborted() {
			return
		}
		if err := ec.tickErr(&ticks); err != nil {
			fail(err)
			return
		}
		id, more, err := scan.nextSelID(ec)
		if err != nil {
			fail(err)
			return
		}
		if !more {
			break
		}
		out.rows++
		var key uint64
		var keyNull bool
		if keyVec.IsNumber {
			n, okv := keyVec.NumAt(id)
			key, keyNull = math.Float64bits(n), !okv
		} else {
			c, okv := keyVec.CodeAt(id)
			key, keyNull = uint64(c), !okv
		}
		var grp *fastGroup
		if keyNull {
			if nullIdx < 0 {
				grp = &fastGroup{reprID: id, states: make([]fastAggState, len(specs))}
				nullIdx = len(out.order)
				out.order = append(out.order, grp)
				out.keys = append(out.keys, 0)
				out.isNull = append(out.isNull, true)
			} else {
				grp = out.order[nullIdx]
			}
		} else {
			grp = index[key]
			if grp == nil {
				grp = &fastGroup{reprID: id, states: make([]fastAggState, len(specs))}
				index[key] = grp
				out.order = append(out.order, grp)
				out.keys = append(out.keys, key)
				out.isNull = append(out.isNull, false)
			}
		}
		accumFastRow(grp, specs, id)
	}
	// materialize the representative rows while the clone is open
	out.reprs = make([][]jsondom.Value, len(out.order))
	for i, fg := range out.order {
		repr, _, err := scan.materialize(fg.reprID, scan.rows[fg.reprID])
		if err != nil {
			fail(err)
			return
		}
		scan.rowsOut++
		n := rowBytes(repr) + 8
		if err := ec.grow(n); err != nil {
			fail(err)
			return
		}
		out.mem += n
		out.reprs[i] = repr
	}
}

// accumFastRow folds row id into one group's accumulators — the same
// per-kind arithmetic as buildFast's inner loop.
func accumFastRow(grp *fastGroup, specs []aggFastSpec, id int) {
	for i := range specs {
		sp := &specs[i]
		st := &grp.states[i]
		if sp.kind == aggFastCountStar {
			st.count++
			continue
		}
		if sp.vec.IsNumber {
			n, okv := sp.vec.NumAt(id)
			if !okv {
				continue
			}
			switch sp.kind {
			case aggFastCount:
				st.count++
			case aggFastSum, aggFastAvg:
				st.count++
				st.sum += n
				st.valid = true
			case aggFastMin:
				if !st.valid || n < st.num {
					st.num = n
				}
				st.valid = true
			case aggFastMax:
				if !st.valid || n > st.num {
					st.num = n
				}
				st.valid = true
			}
			continue
		}
		c, okv := sp.vec.CodeAt(id)
		if !okv {
			continue
		}
		switch sp.kind {
		case aggFastCount:
			st.count++
		case aggFastMin:
			if !st.valid || c < st.code {
				st.code = c
			}
			st.valid = true
		case aggFastMax:
			if !st.valid || c > st.code {
				st.code = c
			}
			st.valid = true
		}
	}
}

// mergeFastState folds src into dst for one aggregate — the partial
// tables are disjoint row sets, so counts and sums add, and min/max
// combine in the vector's native representation.
func mergeFastState(dst, src *fastAggState, sp *aggFastSpec) {
	switch sp.kind {
	case aggFastCountStar, aggFastCount:
		dst.count += src.count
	case aggFastSum, aggFastAvg:
		dst.count += src.count
		dst.sum += src.sum
		dst.valid = dst.valid || src.valid
	case aggFastMin:
		if !src.valid {
			return
		}
		if sp.vec.IsNumber {
			if !dst.valid || src.num < dst.num {
				dst.num = src.num
			}
		} else if !dst.valid || src.code < dst.code {
			dst.code = src.code
		}
		dst.valid = true
	case aggFastMax:
		if !src.valid {
			return
		}
		if sp.vec.IsNumber {
			if !dst.valid || src.num > dst.num {
				dst.num = src.num
			}
		} else if !dst.valid || src.code > dst.code {
			dst.code = src.code
		}
		dst.valid = true
	}
}

// buildParGeneric is the parallel generic aggregation: each worker
// runs the rendered-key build loop over its pipeline clone, and the
// merge folds partials in partition order through the aggregate
// states' merge methods. Declines when any aggregate state is not
// mergeable (json_dataguideagg's DataGuide flat form is
// insertion-order sensitive).
func (g *groupAggOp) buildParGeneric(ec *ExecCtx, pp *parPipe, parts [][2]int) (bool, error) {
	for _, st := range g.newStates() {
		if _, ok := st.(mergeableAggState); !ok {
			return false, nil
		}
	}
	fleet := newParFleet()
	partials := make([]parAggPartial, len(parts))
	fleet.wg.Add(len(parts))
	for i, part := range parts {
		pipe := pp.workerSource(part[0], part[1], g.env)
		go g.parGenericWorker(ec, fleet, pipe, &partials[i])
	}
	fleet.wg.Wait()

	var rows, partialGroups int64
	index := make(map[string]*groupState)
	var order []string
	for pi := range partials {
		p := &partials[pi]
		g.memUsed += p.mem
		if p.err != nil {
			return true, p.err
		}
		rows += p.rows
		partialGroups += int64(len(p.order))
		for _, k := range p.order {
			gs := p.index[k]
			ex, seen := index[k]
			if !seen {
				index[k] = gs
				order = append(order, k)
				continue
			}
			for i := range ex.states {
				ex.states[i].(mergeableAggState).merge(gs.states[i])
			}
		}
	}
	if len(order) == 0 && g.implicitGroup {
		inSch := g.in.Schema()
		gs := &groupState{repr: make([]jsondom.Value, len(inSch)), states: g.newStates()}
		for i := range gs.repr {
			gs.repr[i] = null
		}
		index[""] = gs
		order = append(order, "")
	}
	for _, k := range order {
		gs := index[k]
		out := make([]jsondom.Value, 0, len(gs.repr)+len(g.aggs))
		out = append(out, gs.repr...)
		for _, st := range gs.states {
			out = append(out, st.result())
		}
		g.groups = append(g.groups, out)
	}
	g.parStat = fmt.Sprintf("par-agg: mode=generic workers=%d rows=%d partial-groups=%d merged-groups=%d",
		len(parts), rows, partialGroups, len(order))
	mParExecOps.Inc()
	mParExecWorkers.Add(int64(len(parts)))
	mParExecPartialGroups.Add(partialGroups)
	mParExecMergedGroups.Add(int64(len(order)))
	return true, nil
}

// parGenericWorker runs the serial generic build loop over one
// pipeline clone, into a private table.
func (g *groupAggOp) parGenericWorker(ec *ExecCtx, fleet *parFleet, pipe rowSource, out *parAggPartial) {
	defer fleet.wg.Done()
	fail := func(err error) {
		out.err = err
		fleet.stop()
	}
	if err := pipe.Open(ec); err != nil {
		fail(err)
		return
	}
	defer pipe.Close() //nolint:errcheck // worker-owned clone
	next := batchNextFunc(pipe, g.batch)
	out.index = make(map[string]*groupState)
	bindExprs := append([]Expr{}, g.groupBy...)
	for _, a := range g.aggs {
		bindExprs = append(bindExprs, a.Args...)
	}
	ctx := g.env.bindCtx(pipe.Schema(), bindExprs...)
	ticks := 0
	var keyBuf []byte // worker-local rendered-key scratch
	for {
		if fleet.aborted() {
			return
		}
		if err := ec.tickErr(&ticks); err != nil {
			fail(err)
			return
		}
		row, ok, err := next(ec)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			return
		}
		out.rows++
		ctx.row = row
		keyBuf = keyBuf[:0]
		for _, e := range g.groupBy {
			v, err := evalExpr(ctx, e)
			if err != nil {
				fail(err)
				return
			}
			keyBuf = keyRenderAppend(keyBuf, v)
		}
		gs, seen := out.index[string(keyBuf)] // alloc-free lookup
		if !seen {
			key := string(keyBuf)
			gs = &groupState{repr: row, states: g.newStates()}
			out.index[key] = gs
			out.order = append(out.order, key)
			n := rowBytes(row) + int64(len(key))
			if err := ec.grow(n); err != nil {
				fail(err)
				return
			}
			out.mem += n
		}
		for i, agg := range g.aggs {
			var arg jsondom.Value = null
			if len(agg.Args) > 0 {
				v, err := evalExpr(ctx, agg.Args[0])
				if err != nil {
					fail(err)
					return
				}
				arg = v
			}
			gs.states[i].add(arg)
		}
	}
}

// ---------------------------------------------------------------------------
// aggregate-state merging

// mergeableAggState is an aggState whose accumulator over a row set
// can be folded from per-partition accumulators over disjoint subsets.
type mergeableAggState interface {
	aggState
	merge(other aggState)
}

func (s *countState) merge(other aggState) { s.n += other.(*countState).n }

func (s *sumState) merge(other aggState) {
	o := other.(*sumState)
	s.sum += o.sum
	s.valid = s.valid || o.valid
}

func (s *avgState) merge(other aggState) {
	o := other.(*avgState)
	s.sum += o.sum
	s.n += o.n
}

func (s *minMaxState) merge(other aggState) {
	if o := other.(*minMaxState); o.best != nil {
		s.add(o.best)
	}
}

// ---------------------------------------------------------------------------
// parallel hash-join probe

// parProbe is the execution state of a parallel probe: the shared
// read-only build table lives on the hashJoin; workers join their
// probe partitions in place and deliver fully-joined batches over
// per-worker channels, merged in partition order.
type parProbe struct {
	h     *hashJoin
	fleet *parFleet
	chans []chan parRow
	cur   int
	held  *Batch
	pos   int
	// fast marks the code-space probe; mode is its EXPLAIN label.
	fast     bool
	mode     string
	workers  int
	probed   []int64 // per-worker, read after the fleet is joined
	hits     []int64
	stalls   int64
	reported bool
}

// startParProbe decides whether the probe side can fan out, builds
// the shared table (once, single-goroutine — the build side is the
// small side by the PR7 cost choice), and launches the workers.
// ok=false means the caller must open the left input and run the
// serial probe.
func (h *hashJoin) startParProbe(ec *ExecCtx) (bool, error) {
	pp := findParPipe(h.left, h.parDegree)
	if pp == nil {
		return false, nil
	}
	parts := pp.partitions()
	if parts == nil {
		return false, nil
	}
	pj := &parProbe{h: h, fleet: newParFleet(), workers: len(parts)}
	fast, err := h.parFastTable(ec, pp)
	if err != nil {
		return false, err
	}
	if !fast {
		if err := h.buildRightTable(ec); err != nil {
			return false, err
		}
	}
	pj.fast = fast
	pj.mode = "generic"
	if fast {
		pj.mode = "float-bits"
		if v, okV := pp.base.vectorFor(h.fastLCol); okV && !v.IsNumber {
			pj.mode = "dict-codes"
		}
	}
	pj.chans = make([]chan parRow, len(parts))
	pj.probed = make([]int64, len(parts))
	pj.hits = make([]int64, len(parts))
	pj.fleet.wg.Add(len(parts))
	for i, part := range parts {
		pj.chans[i] = make(chan parRow, parBatchChanCap)
		if fast {
			scan := pp.base.cloneForRange(part[0], part[1])
			go pj.fastWorker(ec, scan, pj.chans[i], &pj.probed[i], &pj.hits[i])
		} else {
			pipe := pp.workerSource(part[0], part[1], h.env)
			go pj.genericWorker(ec, pipe, pj.chans[i], &pj.probed[i], &pj.hits[i])
		}
	}
	h.pj = pj
	mParExecOps.Inc()
	mParExecWorkers.Add(int64(len(parts)))
	return true, nil
}

// parFastTable qualifies and builds the code-space shared table from
// the (already open) right input: single ColRef keys on both sides,
// id-capable scans, directly comparable vector representations. The
// probe-side checks run on a zero-row clone. true means h.fastTable
// and h.fastLVecCol are set.
func (h *hashJoin) parFastTable(ec *ExecCtx, pp *parPipe) (bool, error) {
	if !h.batch || len(pp.chain) != 0 || pp.filter != nil {
		return false, nil
	}
	rscan, okR := h.right.(*tableScan)
	if !okR || !rscan.idCapable() {
		return false, nil
	}
	if len(h.leftKeys) != 1 || len(h.rightKeys) != 1 {
		return false, nil
	}
	lcol, okL := h.leftKeys[0].(*ColRef)
	rcol, okC := h.rightKeys[0].(*ColRef)
	if !okL || !okC {
		return false, nil
	}
	rvec, okV := rscan.vectorFor(rcol)
	if !okV {
		return false, nil
	}
	probe := pp.base.cloneForRange(0, 0)
	if err := probe.Open(ec); err != nil {
		return false, err
	}
	idOK := probe.idCapable()
	lvec, okLV := probe.vectorFor(lcol)
	_ = probe.Close()
	if !idOK || !okLV {
		return false, nil
	}
	if lvec.IsNumber != rvec.IsNumber {
		return false, nil
	}
	if !lvec.IsNumber && !lvec.SameDict(rvec) {
		return false, nil
	}
	// build once from the open right scan — identical to joinFast.build
	jf := &joinFast{h: h, rscan: rscan, rvec: rvec, lvec: lvec}
	if err := jf.build(ec); err != nil {
		return false, err
	}
	h.fastTable = jf.table
	h.fastLCol = lcol
	return true, nil
}

// buildRightTable materializes the (already open) right input into the
// rendered-key shared table — the serial buildGeneric loop without the
// left-side hookup.
func (h *hashJoin) buildRightTable(ec *ExecCtx) error {
	rightNext := batchNextFunc(h.right, h.batch)
	h.table = make(map[string][][]jsondom.Value)
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return err
		}
		row, ok, err := rightNext(ec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k, kok, err := h.keyOf(h.rightCtx, h.keyBuf, row, h.rightKeys)
		h.keyBuf = k
		if err != nil {
			return err
		}
		if !kok {
			continue
		}
		ks := string(k)
		n := rowBytes(row) + int64(len(ks))
		if err := ec.grow(n); err != nil {
			return err
		}
		h.memUsed += n
		h.table[ks] = append(h.table[ks], row)
	}
}

// fastWorker probes one partition against the shared code-space table,
// emitting fully-joined batches. Semantics mirror joinFast.next: NULL
// keys never match, the left-outer pad fires only on key misses, the
// residual is evaluated on the concatenated row and its rejections do
// not pad.
func (pj *parProbe) fastWorker(ec *ExecCtx, scan *tableScan, ch chan parRow, probed, hits *int64) {
	h := pj.h
	defer pj.fleet.wg.Done()
	defer close(ch)
	fail := func(err error) {
		pj.fleet.send(ch, parRow{err: err})
		pj.fleet.stop()
	}
	if err := scan.Open(ec); err != nil {
		fail(err)
		return
	}
	defer scan.Close() //nolint:errcheck // worker-owned clone
	lvec, okLV := scan.vectorFor(h.fastLCol)
	if !okLV {
		fail(fmt.Errorf("parallel probe: key vector vanished at execution"))
		return
	}
	var residCtx *evalCtx
	if h.residual != nil {
		residCtx = h.env.bindCtx(h.sch, h.residual)
	}
	var arena rowArena
	out := getBatch()
	flush := func() bool {
		if out.Len() == 0 {
			return true
		}
		if !pj.fleet.send(ch, parRow{b: out}) {
			putBatch(out)
			out = nil
			return false
		}
		out = getBatch()
		return true
	}
	rightWidth := len(h.right.Schema())
	ticks := 0
	for {
		if pj.fleet.aborted() {
			putBatch(out)
			return
		}
		if err := ec.tickErr(&ticks); err != nil {
			putBatch(out)
			fail(err)
			return
		}
		id, more, err := scan.nextSelID(ec)
		if err != nil {
			putBatch(out)
			fail(err)
			return
		}
		if !more {
			flush()
			putBatch(out)
			return
		}
		*probed++
		key, okKey := keyAt(lvec, id)
		var matches [][]jsondom.Value
		if okKey {
			matches = h.fastTable[key]
		}
		if len(matches) == 0 {
			if !h.leftOuter {
				continue
			}
			row, _, err := scan.materialize(id, scan.rows[id])
			if err != nil {
				putBatch(out)
				fail(err)
				return
			}
			scan.rowsOut++
			pad := arena.alloc(len(row) + rightWidth)
			copy(pad, row)
			for i := len(row); i < len(pad); i++ {
				pad[i] = null
			}
			out.add(pad)
			if out.Len() >= batchSize && !flush() {
				return
			}
			continue
		}
		*hits++
		row, _, err := scan.materialize(id, scan.rows[id])
		if err != nil {
			putBatch(out)
			fail(err)
			return
		}
		scan.rowsOut++
		for _, r := range matches {
			joined := arena.alloc(len(row) + len(r))
			copy(joined, row)
			copy(joined[len(row):], r)
			if residCtx != nil {
				residCtx.row = joined
				v, err := evalExpr(residCtx, h.residual)
				if err != nil {
					putBatch(out)
					fail(err)
					return
				}
				if !truthy(v) {
					continue
				}
			}
			out.add(joined)
			if out.Len() >= batchSize && !flush() {
				return
			}
		}
	}
}

// genericWorker probes one partition's pipeline clone against the
// shared rendered-key table; per-worker key and residual contexts,
// serial probe semantics (pad on key miss only, residual on the
// concatenated row).
func (pj *parProbe) genericWorker(ec *ExecCtx, pipe rowSource, ch chan parRow, probed, hits *int64) {
	h := pj.h
	defer pj.fleet.wg.Done()
	defer close(ch)
	fail := func(err error) {
		pj.fleet.send(ch, parRow{err: err})
		pj.fleet.stop()
	}
	if err := pipe.Open(ec); err != nil {
		fail(err)
		return
	}
	defer pipe.Close() //nolint:errcheck // worker-owned clone
	next := batchNextFunc(pipe, h.batch)
	keyCtx := h.env.bindCtx(pipe.Schema(), h.leftKeys...)
	var keyBuf []byte // worker-local keyOf scratch (h.keyBuf would race)
	var residCtx *evalCtx
	if h.residual != nil {
		residCtx = h.env.bindCtx(h.sch, h.residual)
	}
	var arena rowArena
	out := getBatch()
	flush := func() bool {
		if out.Len() == 0 {
			return true
		}
		if !pj.fleet.send(ch, parRow{b: out}) {
			putBatch(out)
			out = nil
			return false
		}
		out = getBatch()
		return true
	}
	rightWidth := len(h.right.Schema())
	ticks := 0
	for {
		if pj.fleet.aborted() {
			putBatch(out)
			return
		}
		if err := ec.tickErr(&ticks); err != nil {
			putBatch(out)
			fail(err)
			return
		}
		row, ok, err := next(ec)
		if err != nil {
			putBatch(out)
			fail(err)
			return
		}
		if !ok {
			flush()
			putBatch(out)
			return
		}
		*probed++
		k, kok, err := h.keyOf(keyCtx, keyBuf, row, h.leftKeys)
		keyBuf = k
		if err != nil {
			putBatch(out)
			fail(err)
			return
		}
		var matches [][]jsondom.Value
		if kok {
			matches = h.table[string(k)]
		}
		if len(matches) == 0 {
			if !h.leftOuter {
				continue
			}
			pad := arena.alloc(len(row) + rightWidth)
			copy(pad, row)
			for i := len(row); i < len(pad); i++ {
				pad[i] = null
			}
			out.add(pad)
			if out.Len() >= batchSize && !flush() {
				return
			}
			continue
		}
		*hits++
		for _, r := range matches {
			joined := arena.alloc(len(row) + len(r))
			copy(joined, row)
			copy(joined[len(row):], r)
			if residCtx != nil {
				residCtx.row = joined
				v, err := evalExpr(residCtx, h.residual)
				if err != nil {
					putBatch(out)
					fail(err)
					return
				}
				if !truthy(v) {
					continue
				}
			}
			out.add(joined)
			if out.Len() >= batchSize && !flush() {
				return
			}
		}
	}
}

// next drains the merged probe output row by row, channels consumed in
// partition order so the join emits the serial left-major row order.
func (pj *parProbe) next(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	for {
		if pj.held != nil {
			if pj.pos < pj.held.Len() {
				row := pj.held.Row(pj.pos)
				pj.pos++
				return row, true, nil
			}
			putBatch(pj.held)
			pj.held = nil
		}
		r, more := pj.recv()
		if !more {
			pj.report()
			return nil, false, nil
		}
		if r.err != nil {
			return nil, false, r.err
		}
		pj.held, pj.pos = r.b, 0
	}
}

// recv pulls the next batch in partition order, counting a stall when
// the consumer outruns the workers.
func (pj *parProbe) recv() (parRow, bool) {
	for pj.cur < len(pj.chans) {
		ch := pj.chans[pj.cur]
		select {
		case r, ok := <-ch:
			if !ok {
				pj.cur++
				continue
			}
			return r, true
		default:
		}
		mParExecMergeStalls.Inc()
		pj.stalls++
		r, ok := <-ch
		if !ok {
			pj.cur++
			continue
		}
		return r, true
	}
	return parRow{}, false
}

// report flushes the per-worker probe counters to metrics once the
// fleet has drained (or been closed — close joins the workers first,
// making the counters quiescent).
func (pj *parProbe) report() {
	if pj.reported {
		return
	}
	pj.reported = true
	var probed int64
	for _, n := range pj.probed {
		probed += n
	}
	mParExecProbeRows.Add(probed)
}

// close stops the fleet, joins the workers, and recycles any batches
// still in flight — workers parked on a send unblock through the abort
// case, so a partially-drained merge cannot leak goroutines.
func (pj *parProbe) close() {
	pj.fleet.close()
	putBatch(pj.held)
	pj.held = nil
	for _, ch := range pj.chans {
		for r := range ch {
			//fsdmvet:ignore poolcheck r is a drained channel record discarded with this iteration
			putBatch(r.b)
		}
	}
	pj.report()
}

// totals sums the per-worker counters; callers must only use it after
// close (the workers are joined).
func (pj *parProbe) totals() (probed, hits int64) {
	for i := range pj.probed {
		probed += pj.probed[i]
		hits += pj.hits[i]
	}
	return probed, hits
}

// ---------------------------------------------------------------------------
// parallel sort

// parSortRun is one worker's sorted run: rows in key order with their
// evaluated sort keys kept for the merge.
type parSortRun struct {
	rows [][]jsondom.Value
	keys [][]jsondom.Value
	pos  int
	mem  int64
	err  error
}

// buildParallel materializes and sorts per-partition runs in workers;
// ok=false falls back to the serial materialize+sort. The k-way merge
// in Next restores the exact serial order: compareForSort is a total
// preorder, runs hold partition-contiguous rows in stable key order,
// and ties across runs break toward the lower partition index — the
// same order sort.SliceStable produces over the concatenated input.
func (s *sortOp) buildParallel(ec *ExecCtx) (bool, error) {
	pp := findParPipe(s.in, s.parDegree)
	if pp == nil {
		return false, nil
	}
	parts := pp.partitions()
	if parts == nil {
		return false, nil
	}
	fleet := newParFleet()
	runs := make([]parSortRun, len(parts))
	fleet.wg.Add(len(parts))
	for i, part := range parts {
		pipe := pp.workerSource(part[0], part[1], s.env)
		go s.parSortWorker(ec, fleet, pipe, &runs[i])
	}
	fleet.wg.Wait()
	var rows int64
	for i := range runs {
		s.memUsed += runs[i].mem
		if runs[i].err != nil {
			return true, runs[i].err
		}
		rows += int64(len(runs[i].rows))
	}
	s.runs = runs
	s.parStat = fmt.Sprintf("par-sort: workers=%d rows=%d", len(parts), rows)
	mParExecOps.Inc()
	mParExecWorkers.Add(int64(len(parts)))
	return true, nil
}

// parSortWorker materializes one pipeline clone, evaluates the sort
// keys, and stable-sorts the run locally.
func (s *sortOp) parSortWorker(ec *ExecCtx, fleet *parFleet, pipe rowSource, out *parSortRun) {
	defer fleet.wg.Done()
	fail := func(err error) {
		out.err = err
		fleet.stop()
	}
	if err := pipe.Open(ec); err != nil {
		fail(err)
		return
	}
	defer pipe.Close() //nolint:errcheck // worker-owned clone
	next := batchNextFunc(pipe, s.batch)
	ticks := 0
	for {
		if fleet.aborted() {
			return
		}
		if err := ec.tickErr(&ticks); err != nil {
			fail(err)
			return
		}
		row, ok, err := next(ec)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			break
		}
		n := rowBytes(row)
		if err := ec.grow(n); err != nil {
			fail(err)
			return
		}
		out.mem += n
		out.rows = append(out.rows, row)
	}
	var itemExprs []Expr
	for _, it := range s.items {
		itemExprs = append(itemExprs, it.Expr)
	}
	ctx := s.env.bindCtx(pipe.Schema(), itemExprs...)
	out.keys = make([][]jsondom.Value, len(out.rows))
	for i, row := range out.rows {
		ctx.row = row
		out.keys[i] = make([]jsondom.Value, len(s.items))
		for k, it := range s.items {
			v, err := evalExpr(ctx, it.Expr)
			if err != nil {
				fail(err)
				return
			}
			out.keys[i][k] = v
		}
	}
	idx := make([]int, len(out.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sortKeyLess(s.items, out.keys[idx[a]], out.keys[idx[b]])
	})
	rows := make([][]jsondom.Value, len(out.rows))
	keys := make([][]jsondom.Value, len(out.rows))
	for i, j := range idx {
		rows[i] = out.rows[j]
		keys[i] = out.keys[j]
	}
	out.rows, out.keys = rows, keys
}

// sortKeyLess is the ORDER BY comparison over evaluated key tuples —
// the exact comparison sortOp's serial sort uses.
func sortKeyLess(items []OrderItem, a, b []jsondom.Value) bool {
	for k, it := range items {
		c := compareForSort(a[k], b[k])
		if it.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// mergeNext pops the globally-next row off the sorted runs: the
// smallest head key, ties to the lowest partition index (strict-less
// replacement while scanning ascending keeps the earlier run).
func (s *sortOp) mergeNext() ([]jsondom.Value, bool) {
	best := -1
	for i := range s.runs {
		r := &s.runs[i]
		if r.pos >= len(r.rows) {
			continue
		}
		if best < 0 || sortKeyLess(s.items, r.keys[r.pos], s.runs[best].keys[s.runs[best].pos]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	r := &s.runs[best]
	row := r.rows[r.pos]
	r.pos++
	return row, true
}
