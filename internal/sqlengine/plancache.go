// The LRU plan cache behind the OLTP fast path: plain Query/Exec
// calls look their normalized SQL up here and, on a hit, skip the
// parser and planner entirely — the cached preparedPlan is
// instantiated with the execution's parameter values (user binds plus
// auto-parameterized literals) and drained. Entries carry the
// planner-option snapshot and the engine's plan generation at build
// time; a generation bump (DDL, IMC attach/detach) or an option flip
// makes the entry self-invalidate at its next lookup.

package sqlengine

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/jsondom"
	"repro/internal/metrics"
)

// defaultPlanCacheSize is the plan cache capacity a new engine starts
// with.
const defaultPlanCacheSize = 128

// planEntry is one cached, immutable compiled statement plus the
// binding recipe that maps an execution's literals onto the plan's
// parameter slots.
type planEntry struct {
	key  string
	plan *preparedPlan
	gen  uint64         // engine plan generation at build time
	opts PlannerOptions // planner-option snapshot at build time
	// litParam maps the i-th number/string token to its bind slot, or
	// -1 for tokens whose text is baked into the plan (fixed).
	litParam []int
	// fixed holds, in order, the texts of the baked literal tokens; a
	// lookup whose tokens differ here cannot reuse the plan.
	fixed []string
	// nUser is the user-supplied parameter count the plan was built
	// for; nSlots is nUser plus the auto-parameterized literal count.
	nUser, nSlots int
	// statsFP fingerprints the power-of-two size buckets of the base
	// tables the plan reads (planStatsFP); a lookup whose recomputed
	// fingerprint differs re-plans, so cost-based decisions track
	// statistics drift.
	statsFP uint64
}

// bindLits assembles the execution parameter vector: the caller's
// values in slots [0,nUser) and the lookup's literal tokens converted
// into the slots recorded at build time. It reports false when the
// token stream does not fit the entry (fixed-text mismatch).
func (ent *planEntry) bindLits(user []jsondom.Value, lits []token) ([]jsondom.Value, bool) {
	if len(lits) != len(ent.litParam) {
		return nil, false
	}
	exec := make([]jsondom.Value, ent.nSlots)
	copy(exec, user)
	fi := 0
	for i, t := range lits {
		slot := ent.litParam[i]
		if slot < 0 {
			if fi >= len(ent.fixed) || ent.fixed[fi] != t.text {
				return nil, false
			}
			fi++
			continue
		}
		v, err := litValue(t)
		if err != nil {
			return nil, false
		}
		exec[slot] = v
	}
	return exec, true
}

// planCache is a mutex-guarded LRU of planEntry keyed by normalized
// SQL. All methods are safe for concurrent use.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *planEntry
	byKey map[string]*list.Element
}

func newPlanCache(capacity int) *planCache {
	if capacity < 0 {
		capacity = 0
	}
	return &planCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most recently used.
func (c *planCache) get(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry)
}

// peek returns the entry for key without touching recency (EXPLAIN's
// cache-status probe).
func (c *planCache) peek(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		return el.Value.(*planEntry)
	}
	return nil
}

// put inserts or replaces the entry for ent.key, evicting from the
// cold end when over capacity.
func (c *planCache) put(ent *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		return
	}
	if el, ok := c.byKey[ent.key]; ok {
		el.Value = ent
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[ent.key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.cap {
		c.evictBackLocked()
	}
}

// remove drops the entry for key if present.
func (c *planCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		delete(c.byKey, key)
		c.lru.Remove(el)
	}
}

func (c *planCache) evictBackLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	delete(c.byKey, el.Value.(*planEntry).key)
	c.lru.Remove(el)
	mPlanCacheEvictions.Inc()
}

// setCapacity resizes the cache, evicting cold entries as needed;
// n <= 0 disables caching and purges everything.
func (c *planCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.cap = n
	for c.lru.Len() > c.cap {
		c.evictBackLocked()
	}
}

func (c *planCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SetPlanCacheSize resizes the engine's plan cache; n <= 0 disables
// plan caching entirely (every statement hard-parses, the pre-cache
// behavior — used by ablation benchmarks).
func (e *Engine) SetPlanCacheSize(n int) {
	e.plans.setCapacity(n)
}

// PlanCacheLen reports how many plans are currently cached.
func (e *Engine) PlanCacheLen() int {
	return e.plans.len()
}

// invalidatePlans bumps the plan generation, making every cached plan
// (and every PreparedStmt's compiled plan) stale at its next use.
// Called on any catalog or planner-visible change: DDL, view changes,
// search-index creation, virtual columns, IMC attach/detach.
func (e *Engine) invalidatePlans() {
	e.planGen.Add(1)
	mPlanCacheInvalidations.Inc()
}

// plannerSnapshot copies the engine's planner options; PlannerOptions
// is a comparable struct, so the copy doubles as the cache validity
// check against later flag flips.
func (e *Engine) plannerSnapshot() PlannerOptions {
	return e.Planner
}

// buildEntry compiles sel (which buildEntry rewrites in place) into a
// cache entry: parameterizable literals become bind slots numbered
// after the user parameters, in source-token order; the rest have
// their texts recorded as fixed.
func (e *Engine) buildEntry(key string, sel *SelectStmt, lits []token, nUser int, gen uint64, opts PlannerOptions) (*planEntry, error) {
	byOff := collectParamLiterals(sel)
	ent := &planEntry{key: key, gen: gen, opts: opts, nUser: nUser}
	slot := nUser
	assign := make(map[int]int, len(byOff))
	for _, t := range lits {
		if _, ok := byOff[t.pos]; ok {
			ent.litParam = append(ent.litParam, slot)
			assign[t.pos] = slot
			slot++
		} else {
			ent.litParam = append(ent.litParam, -1)
			ent.fixed = append(ent.fixed, t.text)
		}
	}
	ent.nSlots = slot
	if len(assign) > 0 {
		rewriteSelect(sel, func(x Expr) Expr {
			if l, ok := x.(*Literal); ok && l.Off > 0 {
				if s, ok := assign[l.Off]; ok {
					return &Param{Index: s}
				}
			}
			return x
		})
	}
	plan, err := e.planSelectStmt(sel)
	if err != nil {
		return nil, err
	}
	ent.plan = plan
	ent.statsFP = planStatsFP(plan.root)
	return ent, nil
}

// execCached is the plan-cache fast path for Query/Exec: if sql is a
// cacheable SELECT it is served through the cache (counting a hit or
// a miss-and-build) and handled is true; otherwise handled is false
// and the caller takes the ordinary parse-and-execute path.
func (e *Engine) execCached(ctx context.Context, sql string, params []jsondom.Value) (res *Result, handled bool, err error) {
	if e.plans.capacity() == 0 {
		return nil, false, nil
	}
	key, lits, isSelect, nerr := normalizeSQL(sql)
	if nerr != nil || !isSelect {
		return nil, false, nil
	}
	gen := e.planGen.Load()
	opts := e.plannerSnapshot()
	if ent := e.plans.get(key); ent != nil {
		if ent.gen != gen || ent.opts != opts {
			e.plans.remove(key)
		} else if !opts.DisableCostBasedPlanner && ent.statsFP != planStatsFP(ent.plan.root) {
			// statistics drift: the plan's cost decisions were made
			// against table sizes that have since crossed a
			// power-of-two bucket — re-plan with fresh estimates
			mCostStatsDrift.Inc()
			e.plans.remove(key)
		} else if ent.nUser != len(params) {
			// parameter-count drift: let the uncached path produce the
			// engine's usual missing/extra-parameter semantics
			return nil, false, nil
		} else if exec, ok := ent.bindLits(params, lits); ok {
			mPlanCacheHits.Inc()
			mSoftParse.Inc()
			res, err := e.runWrapped(sql, 0, nil, func(collect bool, tr *metrics.Trace) (*Result, rowSource, uint64, error) {
				return e.runPlan(ctx, ent.plan, exec, collect, tr)
			})
			return res, true, err
		}
	}
	// miss: hard-parse, compile, cache, then execute through the new
	// entry so the first execution also runs the shared plan.
	mPlanCacheMisses.Inc()
	mHardParse.Inc()
	t0 := time.Now()
	stmt, perr := ParseStatement(sql)
	if perr != nil {
		return nil, true, perr
	}
	parseD := time.Since(t0)
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		// normalization and the parser disagree on the statement kind;
		// defer to the parser
		res, err := e.execStmt(ctx, sql, parseD, stmt, params)
		return res, true, err
	}
	ent, berr := e.buildEntry(key, sel, lits, len(params), gen, opts)
	if berr != nil {
		// planning failed; re-parse so the ordinary path reports the
		// error with its usual metrics accounting
		stmt2, perr2 := ParseStatement(sql)
		if perr2 != nil {
			return nil, true, perr2
		}
		res, err := e.execStmt(ctx, sql, parseD, stmt2, params)
		return res, true, err
	}
	e.plans.put(ent)
	exec, ok := ent.bindLits(params, lits)
	if !ok {
		// cannot happen: the entry was built from these very tokens
		return nil, false, nil
	}
	res, err = e.runWrapped(sql, parseD, nil, func(collect bool, tr *metrics.Trace) (*Result, rowSource, uint64, error) {
		return e.runPlan(ctx, ent.plan, exec, collect, tr)
	})
	return res, true, err
}
