// End-to-end tests for the observability layer: SHOW METRICS over a
// live workload, the slow-query log, and the ErrQueryCancelled
// wrapper. Metrics land in the process-wide registry, so tests assert
// on deltas, never absolutes.

package sqlengine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/jsondom"
)

// metricValue reads one counter/gauge row out of a SHOW METRICS result.
func metricValue(t *testing.T, r *Result, name string) (int64, bool) {
	t.Helper()
	for _, row := range r.Rows {
		if string(row[0].(jsondom.String)) != name {
			continue
		}
		n, ok := row[1].(jsondom.Number).Int64()
		if !ok {
			t.Fatalf("metric %s: non-integer value %v", name, row[1])
		}
		return n, true
	}
	return 0, false
}

func TestShowMetricsReflectsWorkload(t *testing.T) {
	e := newPOEngine(t)
	before := mustExec(t, e, `show metrics`)
	finished0, _ := metricValue(t, before, "sql.query.started")
	scan0, _ := metricValue(t, before, "sql.scan.rows")
	lat0, _ := metricValue(t, before, "sql.query.latency_ns.count")

	// the Fig. 3 running example: JSON_VALUE projection over the
	// purchase-order table
	r := mustExec(t, e, `select did, json_value(jdoc, '$.purchaseOrder.id')
		from po where json_exists(jdoc, '$.purchaseOrder.items')`)
	if len(r.Rows) != 3 {
		t.Fatalf("fig3 rows = %d", len(r.Rows))
	}

	after := mustExec(t, e, `show metrics`)
	finished1, ok := metricValue(t, after, "sql.query.started")
	if !ok || finished1 <= finished0 {
		t.Fatalf("sql.query.started did not advance: %d -> %d", finished0, finished1)
	}
	if done, ok := metricValue(t, after, "sql.query.finished"); !ok || done == 0 {
		t.Fatalf("sql.query.finished = %d, ok=%v", done, ok)
	}
	scan1, _ := metricValue(t, after, "sql.scan.rows")
	if scan1 < scan0+3 {
		t.Fatalf("sql.scan.rows advanced only %d -> %d, want +3 or more", scan0, scan1)
	}
	lat1, _ := metricValue(t, after, "sql.query.latency_ns.count")
	if lat1 <= lat0 {
		t.Fatalf("latency histogram count did not advance: %d -> %d", lat0, lat1)
	}

	// the bare STATS shorthand (SHOW STATS) is a superset of SHOW
	// METRICS: the metrics rows come first
	alias := mustExec(t, e, `stats`)
	if _, ok := metricValue(t, alias, "sql.query.started"); !ok {
		t.Fatal("STATS alias returned no sql.query.started row")
	}
}

func TestShowMetricsParallelScanCounters(t *testing.T) {
	e := newNumEngine(t, 4000)
	e.Planner.ParallelDegree = 4
	e.Planner.ParallelMinRows = 1
	before := mustExec(t, e, `show metrics`)
	fan0, _ := metricValue(t, before, "sql.scan.parallel.fanout")
	rows0, _ := metricValue(t, before, "sql.scan.parallel.rows")

	mustExec(t, e, `select count(*) from nums where n >= 0`)

	after := mustExec(t, e, `show metrics`)
	fan1, ok := metricValue(t, after, "sql.scan.parallel.fanout")
	if !ok || fan1 != fan0+1 {
		t.Fatalf("parallel fanout %d -> %d, want +1", fan0, fan1)
	}
	rows1, _ := metricValue(t, after, "sql.scan.parallel.rows")
	if rows1 < rows0+4000 {
		t.Fatalf("parallel rows %d -> %d, want +4000", rows0, rows1)
	}
}

func TestSlowQueryLogAboveThreshold(t *testing.T) {
	e := newPOEngine(t)
	var buf bytes.Buffer
	e.SetSlowQueryLog(&buf, 0) // threshold 0: everything is slow
	mustExec(t, e, `select did from po where did > 1 order by did`)
	e.SetSlowQueryLog(nil, 0)

	out := buf.String()
	for _, want := range []string{
		"SLOW QUERY", "threshold=0s",
		"sql: select did from po where did > 1 order by did",
		"execute=", "rows=2",
		"Sort", "TableScan(po", "rows=", // EXPLAIN ANALYZE operator tree
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow log missing %q:\n%s", want, out)
		}
	}
}

func TestSlowQueryLogBelowThreshold(t *testing.T) {
	e := newPOEngine(t)
	var buf bytes.Buffer
	e.SetSlowQueryLog(&buf, time.Hour)
	mustExec(t, e, `select did from po`)
	mustExec(t, e, `insert into po values (77, '{}')`)
	e.SetSlowQueryLog(nil, 0)
	if buf.Len() != 0 {
		t.Fatalf("fast queries must not hit the slow log:\n%s", buf.String())
	}
}

func TestSlowQueryLogDML(t *testing.T) {
	e := newPOEngine(t)
	var buf bytes.Buffer
	e.SetSlowQueryLog(&buf, 0)
	mustExec(t, e, `update po set did = did where did = 1`)
	e.SetSlowQueryLog(nil, 0)
	out := buf.String()
	if !strings.Contains(out, "SLOW QUERY") || !strings.Contains(out, "update po set did") {
		t.Fatalf("DML slow-log entry malformed:\n%s", out)
	}
}

func TestErrQueryCancelledWrapping(t *testing.T) {
	e := newNumEngine(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, `select count(*) from nums a, nums b`)
	if !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("want ErrQueryCancelled, got %v", err)
	}
	// the underlying context sentinel stays reachable through the wrap
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled lost in wrapping: %v", err)
	}

	tctx, tcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer tcancel()
	time.Sleep(time.Millisecond)
	_, err = e.QueryContext(tctx, `select count(*) from nums`)
	if !errors.Is(err, ErrQueryCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: want ErrQueryCancelled wrapping DeadlineExceeded, got %v", err)
	}

	// plain failures are not tagged as cancellation
	_, err = e.Query(`select nope from nums`)
	if err == nil || errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("plain error mis-tagged: %v", err)
	}
}

func TestCancelledQueriesCounted(t *testing.T) {
	e := newNumEngine(t, 2000)
	before := mustExec(t, e, `show metrics`)
	c0, _ := metricValue(t, before, "sql.query.cancelled")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, `select count(*) from nums a, nums b`); err == nil {
		t.Fatal("cancelled query should fail")
	}
	after := mustExec(t, e, `show metrics`)
	c1, _ := metricValue(t, after, "sql.query.cancelled")
	if c1 != c0+1 {
		t.Fatalf("sql.query.cancelled %d -> %d, want +1", c0, c1)
	}
}
