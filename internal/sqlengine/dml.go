// UPDATE and DELETE execution. DML detaches the target table's
// in-memory store (its contents would be stale); search indexes stay
// attached — the persistent DataGuide is additive by design (§3.4) and
// tombstoned row ids simply disappear from posting results.

package sqlengine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/jsondom"
	"repro/internal/store"
)

func (e *Engine) runDelete(ctx context.Context, t *DeleteStmt, params []jsondom.Value) (*Result, error) {
	tab, ok := e.cat.Table(strings.ToLower(t.Table))
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", t.Table)
	}
	ids, err := e.matchRows(ctx, tab, t.Where, params)
	if err != nil {
		return nil, err
	}
	ticks := 0
	for _, rid := range ids {
		ticks++
		if ticks%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tab.Delete(rid)
	}
	e.DetachIMC(tab.Name)
	return affected(len(ids)), nil
}

func (e *Engine) runUpdate(ctx context.Context, t *UpdateStmt, params []jsondom.Value) (*Result, error) {
	tab, ok := e.cat.Table(strings.ToLower(t.Table))
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", t.Table)
	}
	cols := tab.Columns()
	stored := 0
	for _, c := range cols {
		if !c.Virtual {
			stored++
		}
	}
	// resolve target columns to stored positions
	targets := make([]int, len(t.Sets))
	for i, set := range t.Sets {
		pos, ok := tab.ColumnPos(set.Column)
		if !ok || cols[pos].Virtual {
			return nil, fmt.Errorf("sql: no such stored column %q in %q", set.Column, t.Table)
		}
		targets[i] = pos
	}
	ids, err := e.matchRows(ctx, tab, t.Where, params)
	if err != nil {
		return nil, err
	}
	env := &planEnv{params: params, aggCols: map[*FuncCall]int{}, winCols: map[*WindowFunc]int{}}
	sch := tableSchema(tab, "")
	ectx := env.bindCtx(sch)
	for _, set := range t.Sets {
		bindCols(set.Expr, sch, ectx.colIdx)
	}
	ticks := 0
	for _, rid := range ids {
		ticks++
		if ticks%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		old, ok := tab.Get(rid)
		if !ok {
			continue
		}
		full, err := materializeRow(tab, cols, old)
		if err != nil {
			return nil, err
		}
		ectx.row = full
		newRow := make(store.Row, stored)
		copy(newRow, old)
		for i, set := range t.Sets {
			v, err := evalExpr(ectx, set.Expr)
			if err != nil {
				return nil, err
			}
			newRow[targets[i]] = v
		}
		if err := tab.Update(rid, newRow); err != nil {
			return nil, err
		}
	}
	e.DetachIMC(tab.Name)
	return affected(len(ids)), nil
}

// matchRows evaluates the WHERE predicate over every visible row
// (virtual columns included) and returns matching row ids. The scan
// checks ctx cooperatively every cancelCheckInterval rows.
func (e *Engine) matchRows(ctx context.Context, tab *store.Table, where Expr, params []jsondom.Value) ([]int, error) {
	cols := tab.Columns()
	var ids []int
	var evalErr error
	ticks := 0
	tick := func() bool {
		ticks++
		if ticks%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				evalErr = err
				return false
			}
		}
		return true
	}
	if where == nil {
		tab.Scan(func(rid int, _ store.Row) bool {
			if !tick() {
				return false
			}
			ids = append(ids, rid)
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return ids, nil
	}
	env := &planEnv{params: params, aggCols: map[*FuncCall]int{}, winCols: map[*WindowFunc]int{}}
	sch := tableSchema(tab, "")
	ectx := env.bindCtx(sch, where)
	tab.Scan(func(rid int, row store.Row) bool {
		if !tick() {
			return false
		}
		full, err := materializeRow(tab, cols, row)
		if err != nil {
			evalErr = err
			return false
		}
		ectx.row = full
		v, err := evalExpr(ectx, where)
		if err != nil {
			evalErr = err
			return false
		}
		if truthy(v) {
			ids = append(ids, rid)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return ids, nil
}

// tableSchema builds a Schema covering stored and virtual columns.
func tableSchema(tab *store.Table, alias string) Schema {
	var sch Schema
	for _, c := range tab.Columns() {
		sch = append(sch, ColMeta{Table: alias, Name: c.Name, Hidden: c.Hidden})
	}
	return sch
}

// materializeRow extends a stored row with computed virtual columns.
func materializeRow(tab *store.Table, cols []store.Column, row store.Row) ([]jsondom.Value, error) {
	full := make([]jsondom.Value, len(cols))
	for i, c := range cols {
		if !c.Virtual {
			full[i] = row[i]
			continue
		}
		if c.Expr == nil {
			full[i] = null
			continue
		}
		v, err := c.Expr(row)
		if err != nil {
			return nil, err
		}
		full[i] = v
	}
	return full, nil
}

func affected(n int) *Result {
	return &Result{Columns: []string{"rows_affected"},
		Rows: [][]jsondom.Value{{jsondom.NumberFromInt(int64(n))}}}
}
