// Plan/execute split. planSelectStmt produces a preparedPlan: an
// immutable operator-template tree that owns only shareable state —
// expression trees, compiled JSON paths (pathengine.Compiled is
// race-safe; see its doc comment), bound schemas, and the
// aggregate/window column maps. Everything mutable — OpStats, buffers,
// per-row evaluation contexts, cancellation tick counters — lives in
// fresh operator instances cloned per execution by instantiate, so one
// cached plan can serve any number of concurrent executions.
//
// Bind-parameter values never leak into the template: operands that
// depend on parameters are kept as vecFilterSpec / preSpecs and
// resolved by each operator's Open against the execution's planEnv.

package sqlengine

import (
	"fmt"

	"repro/internal/jsondom"
)

// preparedPlan is an immutable, shareable compiled SELECT: the
// operator template tree plus the output column names and the plan's
// aggregate/window column maps (populated during planning, read-only
// afterwards).
type preparedPlan struct {
	root  rowSource
	names []string
	env   *planEnv // params is nil; aggCols/winCols are the plan's maps
}

// planSelectStmt compiles a SELECT into a reusable plan. The statement
// AST becomes part of the plan (planning rewrites it in place), so
// callers must not reuse it for anything else.
func (e *Engine) planSelectStmt(stmt *SelectStmt) (*preparedPlan, error) {
	env := &planEnv{aggCols: map[*FuncCall]int{}, winCols: map[*WindowFunc]int{}}
	src, names, err := e.planSelectPushed(stmt, env, nil)
	if err != nil {
		return nil, err
	}
	return &preparedPlan{root: src, names: names, env: env}, nil
}

// instantiate derives a fresh executable operator tree bound to the
// given parameters. The template is never executed itself.
func (p *preparedPlan) instantiate(params []jsondom.Value) rowSource {
	env := &planEnv{params: params, aggCols: p.env.aggCols, winCols: p.env.winCols}
	return clonePlanTree(p.root, env)
}

// planCloner is implemented by every operator: clonePlan returns a
// fresh instance sharing the template state and binding the
// execution's planEnv.
type planCloner interface {
	clonePlan(env *planEnv) rowSource
}

func clonePlanTree(src rowSource, env *planEnv) rowSource {
	c, ok := src.(planCloner)
	if !ok {
		// every planner-built operator implements planCloner; reaching
		// here is a bug in a newly added operator
		panic(fmt.Sprintf("sqlengine: operator %T is not clonable", src))
	}
	return c.clonePlan(env)
}

func (s *tableScan) clonePlan(env *planEnv) rowSource {
	return &tableScan{
		planEstimate: s.planEstimate,
		tab:          s.tab, alias: s.alias, sch: s.sch, needVC: s.needVC,
		cols: s.cols, sub: s.sub, vecFilters: s.vecFilters,
		vecSpecs: s.vecSpecs, rowIDsFn: s.rowIDsFn,
		batchMode: s.batchMode, batchKernels: s.batchKernels,
		batchLabels: s.batchLabels, bsrc: s.bsrc, batchOut: s.batchOut,
		lo: s.lo, hi: s.hi, samplePct: s.samplePct, env: env,
	}
}

func (f *filterOp) clonePlan(env *planEnv) rowSource {
	return &filterOp{planEstimate: f.planEstimate, in: clonePlanTree(f.in, env), pred: f.pred, env: env, batch: f.batch}
}

func (p *projectOp) clonePlan(env *planEnv) rowSource {
	return &projectOp{planEstimate: p.planEstimate, in: clonePlanTree(p.in, env), exprs: p.exprs, sch: p.sch, env: env, batch: p.batch}
}

func (l *limitOp) clonePlan(env *planEnv) rowSource {
	return &limitOp{planEstimate: l.planEstimate, in: clonePlanTree(l.in, env), limit: l.limit, batch: l.batch}
}

func (j *jsonTableOp) clonePlan(env *planEnv) rowSource {
	var left rowSource
	if j.left != nil {
		left = clonePlanTree(j.left, env)
	}
	return &jsonTableOp{planEstimate: j.planEstimate, left: left, ref: j.ref, sch: j.sch, env: env,
		preFilters: j.preFilters, preSpecs: j.preSpecs, batch: j.batch}
}

func (c *crossJoin) clonePlan(env *planEnv) rowSource {
	return &crossJoin{planEstimate: c.planEstimate, left: clonePlanTree(c.left, env),
		right: clonePlanTree(c.right, env), sch: c.sch}
}

func (h *hashJoin) clonePlan(env *planEnv) rowSource {
	return &hashJoin{
		planEstimate: h.planEstimate,
		left:         clonePlanTree(h.left, env), right: clonePlanTree(h.right, env),
		leftKeys: h.leftKeys, rightKeys: h.rightKeys, residual: h.residual,
		leftOuter: h.leftOuter, env: env, sch: h.sch, batch: h.batch,
		buildLeft: h.buildLeft, parExec: h.parExec, parDegree: h.parDegree,
	}
}

// clonePlan shares sch and the planEnv aggregate column positions
// recorded by newGroupAggOp at plan time; it must not run the
// constructor again, which would re-append synthetic columns.
func (g *groupAggOp) clonePlan(env *planEnv) rowSource {
	return &groupAggOp{planEstimate: g.planEstimate, in: clonePlanTree(g.in, env), groupBy: g.groupBy,
		aggs: g.aggs, env: env, implicitGroup: g.implicitGroup, sch: g.sch, batch: g.batch,
		parExec: g.parExec, parDegree: g.parDegree}
}

func (w *windowOp) clonePlan(env *planEnv) rowSource {
	return &windowOp{planEstimate: w.planEstimate, in: clonePlanTree(w.in, env), funcs: w.funcs, env: env, sch: w.sch, batch: w.batch}
}

func (s *sortOp) clonePlan(env *planEnv) rowSource {
	return &sortOp{planEstimate: s.planEstimate, in: clonePlanTree(s.in, env), items: s.items, env: env,
		batch: s.batch, parExec: s.parExec, parDegree: s.parDegree}
}

func (w *aliasWrap) clonePlan(env *planEnv) rowSource {
	return &aliasWrap{planEstimate: w.planEstimate, in: clonePlanTree(w.in, env), alias: w.alias, sch: w.sch}
}

func (p *parallelScanOp) clonePlan(env *planEnv) rowSource {
	scan, _ := p.template.clonePlan(env).(*tableScan)
	return &parallelScanOp{planEstimate: p.planEstimate, template: scan, filter: p.filter, env: env,
		degree: p.degree, unordered: p.unordered}
}
