// Package sqlengine implements the SQL layer of the reproduction: a
// lexer, parser, and planner for the SQL/JSON subset the paper's
// experiments use (Tables 8, 9, 13), and a row-source executor with
// predicate pushdown, parallel table scans (§5.2.3), EXPLAIN [ANALYZE],
// and per-query memory budgeting.
//
// The Engine is the public entry point: Exec/Query compile a statement
// against a store.Catalog and run it. Observability hooks — counters
// under sql.* in [repro/internal/metrics], the SHOW METRICS statement,
// and an optional slow-query log — are documented in
// docs/OBSERVABILITY.md.
package sqlengine
