package sqlengine

// Tests for the cost-based planner layer (cost.go): statistics
// resolution through the IMC and DataGuide providers, conjunct
// ordering, access-path and join build-side decisions, SHOW STATS, the
// est-rows EXPLAIN annotations, and — most importantly — the corpus
// differential pinning that every cost-based decision is
// order-preserving: bit-for-bit the same rows with the planner on and
// off.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/jsondom"
)

// TestCostMetricsRegistered pins the new planner and DataGuide metric
// names in the default registry (the metriccheck contract: every
// metric documented in docs/OBSERVABILITY.md is registered exactly
// once and shows up in SHOW METRICS).
func TestCostMetricsRegistered(t *testing.T) {
	e := newPOEngine(t)
	r := mustExec(t, e, `show metrics`)
	for _, name := range []string{
		"sql.planner.cost.plans",
		"sql.planner.cost.conjunct_reorders",
		"sql.planner.cost.join_build_left",
		"sql.planner.cost.index_skips",
		"sql.planner.cost.stats_drift",
		"dataguide.stats.values_observed",
		"dataguide.stats.sketch_merges",
	} {
		if _, ok := metricValue(t, r, name); !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
}

// TestColumnStatsResolutionIMC checks the first provider in the chain:
// populated IMC vectors. The corpus d table has 1400 rows; vs is a
// 23-value string dictionary (exact NDV), vn is NULL on every 13th
// row.
func TestColumnStatsResolutionIMC(t *testing.T) {
	e := newCorpusEngine(t, "oson-imc")
	stmt, err := ParseStatement(`select did from d where vn > 0 and vs = 's07'`)
	if err != nil {
		t.Fatal(err)
	}
	cc := e.newCostCtx(stmt.(*SelectStmt))

	vs, ok := cc.columnEstimate(&ColRef{Name: "vs"})
	if !ok {
		t.Fatal("vs did not resolve through the IMC store")
	}
	if vs.rows != corpusDocs || vs.ndv != 23 || vs.nonNull != corpusDocs {
		t.Fatalf("vs stats = %+v, want rows=%d ndv=23", vs, corpusDocs)
	}

	vn, ok := cc.columnEstimate(&ColRef{Name: "vn"})
	if !ok {
		t.Fatal("vn did not resolve through the IMC store")
	}
	wantNulls := float64((corpusDocs + 12) / 13) // every 13th doc lacks $.n
	if vn.rows != corpusDocs || vn.rows-vn.nonNull != wantNulls {
		t.Fatalf("vn stats = %+v, want rows=%d nulls=%g", vn, corpusDocs, wantNulls)
	}
	if !vn.hasNum || vn.minN != 1 || vn.maxN != corpusDocs-1 {
		t.Fatalf("vn min/max = %+v, want [1, %d]", vn, corpusDocs-1)
	}
	// HLL NDV of 1292 distinct values must land within the sketch's
	// error bounds
	if math.Abs(vn.ndv-vn.nonNull)/vn.nonNull > 0.05 {
		t.Fatalf("vn ndv = %g, want within 5%% of %g", vn.ndv, vn.nonNull)
	}
}

// TestPathStatsResolutionGuide checks the second provider: DataGuide
// entries of a value-indexing search index, reached both through a raw
// JSON_VALUE predicate and through a virtual column's recorded
// expression text.
func TestPathStatsResolutionGuide(t *testing.T) {
	e := New()
	mustExec(t, e, `create table g (id number primary key, jdoc varchar2(4000) check (jdoc is json))`)
	for i := 0; i < 500; i++ {
		doc := fmt.Sprintf(`{"u":%d}`, i%50)
		if i%5 != 0 {
			doc = fmt.Sprintf(`{"u":%d,"h":%d}`, i%50, i%200)
		}
		mustExec(t, e, `insert into g values (?, ?)`,
			jsondom.NumberFromInt(int64(i)), jsondom.String(doc))
	}
	mustExec(t, e, `create search index gix on g (jdoc) parameters ('DATAGUIDE ON')`)
	mustExec(t, e, `alter table g add virtual column vu as json_value(jdoc, '$.u' returning number)`)

	stmt, err := ParseStatement(`select id from g where json_value(jdoc, '$.h' returning number) > 0`)
	if err != nil {
		t.Fatal(err)
	}
	cc := e.newCostCtx(stmt.(*SelectStmt))

	h, ok := cc.resolvePath("g", "$.h")
	if !ok {
		t.Fatal("$.h did not resolve through the DataGuide")
	}
	if h.rows != 500 || h.nonNull != 400 {
		t.Fatalf("$.h stats = %+v, want rows=500 nonnull=400", h)
	}
	if !h.hasNum || h.minN != 1 || h.maxN != 199 {
		t.Fatalf("$.h min/max = %+v, want [1, 199]", h)
	}

	// the virtual column resolves to the same path statistics
	vu, ok := cc.columnEstimate(&ColRef{Name: "vu"})
	if !ok {
		t.Fatal("vu did not resolve through its VC expression text")
	}
	if vu.rows != 500 || vu.nonNull != 500 {
		t.Fatalf("vu stats = %+v, want rows=500 nonnull=500", vu)
	}
	if math.Abs(vu.ndv-50)/50 > 0.05 {
		t.Fatalf("vu ndv = %g, want within 5%% of 50", vu.ndv)
	}

	// JSON_EXISTS selectivity is path frequency over documents
	if s, ok := cc.existsSel(&JSONExistsExpr{Arg: &ColRef{Name: "jdoc"}, PathText: "$.h"}); !ok || math.Abs(s-0.8) > 1e-9 {
		t.Fatalf("existsSel($.h) = %v ok=%v, want 0.8", s, ok)
	}
}

// TestConjunctOrderingBySelectivity: a dictionary equality (sel ~
// 1/23) must sort ahead of a wide numeric range (sel ~ 0.93), and
// re-running the ordering is a fixpoint (deterministic plans).
func TestConjunctOrderingBySelectivity(t *testing.T) {
	e := newCorpusEngine(t, "oson-imc")
	stmt, err := ParseStatement(`select did from d where vn >= 100 and vs = 's07'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	cc := e.newCostCtx(sel)
	conjs := splitAnd(sel.Where)
	if len(conjs) != 2 {
		t.Fatalf("want 2 conjuncts, got %d", len(conjs))
	}
	ordered, changed := cc.orderConjuncts(conjs)
	if !changed {
		t.Fatal("expected the selective equality to move ahead of the range")
	}
	if b, ok := ordered[0].(*BinOp); !ok || b.Op != "=" {
		t.Fatalf("ordered[0] = %T %v, want the vs = 's07' equality", ordered[0], ordered[0])
	}
	again, changed2 := cc.orderConjuncts(ordered)
	if changed2 || again[0] != ordered[0] || again[1] != ordered[1] {
		t.Fatal("ordering is not a fixpoint")
	}
}

// TestExplainEstRowsAccuracy reads est-rows off EXPLAIN over the
// corpus dataset and checks the headline numbers: the scan estimate is
// the table size and the filter estimate is within a small factor of
// the true count (dictionary equality: 1400/23 ~ 61).
func TestExplainEstRowsAccuracy(t *testing.T) {
	e := newCorpusEngine(t, "oson-imc")
	// keep a plain Filter over TableScan: no vectorized scan, no
	// pushed row-at-a-time vector filters
	e.Planner.DisableVectorizedScan = true
	e.Planner.DisableVectorFilter = true
	r := mustExec(t, e, `explain select did from d where vs = 's07' and vn >= 0`)
	var scanEst, filterEst int64
	for _, row := range r.Rows {
		line := string(row[0].(jsondom.String))
		if n, ok := parseEstRows(line); ok {
			switch {
			case strings.Contains(line, "TableScan"):
				scanEst = n
			case strings.Contains(strings.TrimSpace(line), "Filter"):
				filterEst = n
			}
		}
	}
	if scanEst != corpusDocs {
		t.Fatalf("TableScan est-rows = %d, want %d", scanEst, corpusDocs)
	}
	if filterEst < 30 || filterEst > 120 {
		t.Fatalf("Filter est-rows = %d, want near 1400/23", filterEst)
	}

	// estimates stay on (observability) when the decisions are off
	e.Planner.DisableCostBasedPlanner = true
	r = mustExec(t, e, `explain select did from d where vs = 's07' and vn >= 0`)
	found := false
	for _, row := range r.Rows {
		if _, ok := parseEstRows(string(row[0].(jsondom.String))); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("DisableCostBasedPlanner must not remove est-rows from EXPLAIN")
	}
}

// parseEstRows extracts the est-rows annotation from one EXPLAIN line.
func parseEstRows(line string) (int64, bool) {
	i := strings.Index(line, "(est-rows=")
	if i < 0 {
		return 0, false
	}
	rest := line[i+len("(est-rows="):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(rest[:j], "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// TestJoinBuildSide: with the 30-row lookup table on the left of the
// join, the cost model must flip the hash build to the left side —
// visibly in EXPLAIN — and return exactly the heuristic plan's rows.
func TestJoinBuildSide(t *testing.T) {
	const q = `select l.lid, a.did from lk l join d a on l.vk = a.vs where a.did < 200 order by l.lid, a.did`
	e := newCorpusEngine(t, "oson-imc")
	e.Planner.DisableBatchExec = true // keep the generic hash join, not the code-space fast path

	r := mustExec(t, e, `explain `+q)
	plan := ""
	for _, row := range r.Rows {
		plan += string(row[0].(jsondom.String)) + "\n"
	}
	if !strings.Contains(plan, "build=left") {
		t.Fatalf("expected a left build side with |lk|=30 vs |d|=1400:\n%s", plan)
	}
	got := fmt.Sprint(mustExec(t, e, q).Rows)

	e.Planner.DisableCostBasedPlanner = true
	r = mustExec(t, e, `explain `+q)
	plan = ""
	for _, row := range r.Rows {
		plan += string(row[0].(jsondom.String)) + "\n"
	}
	if strings.Contains(plan, "build=left") {
		t.Fatalf("heuristic planner must keep the right build side:\n%s", plan)
	}
	want := fmt.Sprint(mustExec(t, e, q).Rows)
	if got != want {
		t.Fatalf("build-left join diverges from build-right:\n  got  %s\n  want %s", clip(got), clip(want))
	}
}

// TestCorpusCostBasedDifferential is the ablation pin: every corpus
// query under every storage mode returns bit-for-bit identical rows
// with the cost-based planner on and off (all decisions are
// order-preserving by construction).
func TestCorpusCostBasedDifferential(t *testing.T) {
	cases := loadCorpus(t)
	for _, mode := range corpusStorageModes {
		e := newCorpusEngine(t, mode)
		on := make([]string, len(cases))
		e.Planner = PlannerOptions{}
		for ci, c := range cases {
			r, err := e.Exec(c.sql)
			if err != nil {
				t.Fatalf("%s cost-on %s: %v", mode, c.name, err)
			}
			on[ci] = fmt.Sprint(r.Rows)
		}
		e.Planner = PlannerOptions{DisableCostBasedPlanner: true}
		for ci, c := range cases {
			r, err := e.Exec(c.sql)
			if err != nil {
				t.Fatalf("%s cost-off %s: %v", mode, c.name, err)
			}
			if got := fmt.Sprint(r.Rows); got != on[ci] {
				t.Errorf("%s %s: cost-based planner changed the result:\n  on  %s\n  off %s",
					mode, c.name, clip(on[ci]), clip(got))
			}
		}
	}
}

// TestShowStatsOptimizerRows checks the SHOW STATS extension rows: the
// metrics rows first (superset of SHOW METRICS), then per-table row
// counts, DataGuide per-path statistics, and IMC column statistics.
func TestShowStatsOptimizerRows(t *testing.T) {
	e := newCorpusEngine(t, "oson-imc")
	mustExec(t, e, `create search index dix on d (jdoc) parameters ('DATAGUIDE ON')`)
	r := mustExec(t, e, `show stats`)
	if _, ok := metricValue(t, r, "sql.query.started"); !ok {
		t.Fatal("SHOW STATS lost the SHOW METRICS rows")
	}
	for name, want := range map[string]int64{
		"optimizer.d.rows":       corpusDocs,
		"optimizer.lk.rows":      corpusLookups,
		"optimizer.d.guide.docs": corpusDocs,
		"optimizer.d.imc.vs.ndv": 23,
	} {
		if v, ok := metricValue(t, r, name); !ok || v != want {
			t.Errorf("%s = %d (present=%v), want %d", name, v, ok, want)
		}
	}
	freq, ok := metricValue(t, r, "optimizer.d.path.$.s.frequency")
	if !ok || freq != corpusDocs {
		t.Errorf("optimizer.d.path.$.s.frequency = %d (present=%v), want %d", freq, ok, corpusDocs)
	}
}

// skewedDoc builds the skewed-selectivity benchmark document: $.u is a
// 1000-value key (equality keeps ~0.1%), $.h is uniform over [0,1000)
// (>= 100 keeps ~90%).
func skewedDoc(i int) string {
	return fmt.Sprintf(`{"u":%d,"h":%d,"pad":"%060d"}`, i%1000, (i*7)%1000, i)
}

// newSkewedEngine builds the benchmark table with a value-indexing
// DataGuide search index, so both predicates resolve real statistics.
func newSkewedEngine(tb testing.TB, docs int) *Engine {
	tb.Helper()
	e := New()
	if _, err := e.Exec(`create table sk (id number primary key, jdoc varchar2(4000) check (jdoc is json))`); err != nil {
		tb.Fatal(err)
	}
	if _, err := e.Exec(`create search index skix on sk (jdoc) parameters ('DATAGUIDE ON')`); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		if _, err := e.Exec(`insert into sk values (?, ?)`,
			jsondom.NumberFromInt(int64(i)), jsondom.String(skewedDoc(i))); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

// skewedQuery writes the unselective conjunct first: the heuristic
// planner evaluates $.h >= 100 (90% pass) against every row before the
// $.u equality (0.1% pass); the cost-based planner flips them.
const skewedQuery = `select id from sk where json_value(jdoc, '$.h' returning number) >= 100 and json_value(jdoc, '$.u' returning number) = 100 order by id`

// TestSkewedConjunctReorder pins the reorder itself (counter delta and
// identical rows); the speedup is measured by
// BenchmarkSkewedConjuncts.
func TestSkewedConjunctReorder(t *testing.T) {
	e := newSkewedEngine(t, 2000)
	re0 := mCostReorders.Value()
	on := fmt.Sprint(mustExec(t, e, skewedQuery).Rows)
	if mCostReorders.Value() == re0 {
		t.Fatal("expected a conjunct reorder on the skewed query")
	}
	e.Planner.DisableCostBasedPlanner = true
	off := fmt.Sprint(mustExec(t, e, skewedQuery).Rows)
	if on != off {
		t.Fatalf("reorder changed the result:\n  on  %s\n  off %s", clip(on), clip(off))
	}
	if on == "[]" {
		t.Fatal("skewed query returned no rows; the benchmark would measure nothing")
	}
}

// BenchmarkSkewedConjuncts measures the conjunct-reordering win on the
// skewed dataset (EXPERIMENTS.md section "Cost-based planner
// ablation"): cost=on must beat cost=off by >= 1.3x.
func BenchmarkSkewedConjuncts(b *testing.B) {
	e := newSkewedEngine(b, 5000)
	for _, mode := range []struct {
		name string
		off  bool
	}{{"cost=on", false}, {"cost=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e.Planner.DisableCostBasedPlanner = mode.off
			e.SetPlanCacheSize(0) // measure planning + execution, not cache hits
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Exec(skewedQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
