package sqlengine

// End-to-end tests for the planner's pushdown machinery: vectorized
// scans over in-memory vectors, JSON_EXISTS prefilters in all
// translatable shapes, and view predicate pushdown.

import (
	"testing"

	"repro/internal/imc"
	"repro/internal/jsondom"
)

// newVCEngine loads numbered docs with a number VC and a string VC,
// populated as in-memory vectors.
func newVCEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mustExec(t, e, `create table t (did number, jdoc varchar2(0) check (jdoc is json))`)
	words := []string{"apple", "banana", "cherry", "date", "elder"}
	for i := 0; i < 50; i++ {
		doc := `{"n":` + string(jsondom.NumberFromInt(int64(i))) + `,"s":"` + words[i%5] + `"}`
		mustExec(t, e, `insert into t values (?, ?)`,
			jsondom.NumberFromInt(int64(i)), jsondom.String(doc))
	}
	mustExec(t, e, `alter table t add virtual column vn as json_value(jdoc, '$.n' returning number)`)
	mustExec(t, e, `alter table t add virtual column vs as json_value(jdoc, '$.s')`)
	tab, _ := e.Catalog().Table("t")
	mem := imc.NewStore(tab)
	if err := mem.PopulateVC("vn"); err != nil {
		t.Fatal(err)
	}
	if err := mem.PopulateVC("vs"); err != nil {
		t.Fatal(err)
	}
	e.AttachIMC("t", mem)
	return e
}

func TestVectorPushdownShapes(t *testing.T) {
	e := newVCEngine(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`select did from t where vn = 7`, 1},
		{`select did from t where 7 = vn`, 1},
		{`select did from t where vn < 3`, 3},
		{`select did from t where 3 > vn`, 3},
		{`select did from t where vn between 10 and 19`, 10},
		{`select did from t where vn >= 48`, 2},
		{`select did from t where vs = 'banana'`, 10},
		{`select did from t where vn between ? and ?`, 5},
		// JSON_VALUE is rewritten onto the VC, then vector-pushed
		{`select did from t where json_value(jdoc, '$.n' returning number) = 7`, 1},
		// mixed: one pushable conjunct + one residual
		{`select did from t where vn < 10 and mod(did, 2) = 0`, 5},
	}
	for _, c := range cases {
		var params []jsondom.Value
		if c.sql == `select did from t where vn between ? and ?` {
			params = []jsondom.Value{jsondom.Number("10"), jsondom.Number("14")}
		}
		r := mustExec(t, e, c.sql, params...)
		if len(r.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(r.Rows), c.want)
		}
	}
	// agreement with the unoptimized plan on every shape
	e.Planner.DisableVectorFilter = true
	e.Planner.DisableVCRewrite = true
	for _, c := range cases {
		var params []jsondom.Value
		if c.sql == `select did from t where vn between ? and ?` {
			params = []jsondom.Value{jsondom.Number("10"), jsondom.Number("14")}
		}
		r := mustExec(t, e, c.sql, params...)
		if len(r.Rows) != c.want {
			t.Errorf("unoptimized %s: got %d rows, want %d", c.sql, len(r.Rows), c.want)
		}
	}
}

const pushdownView = `create view items_v as
	select po.did, jt.* from po, json_table(jdoc, '$' columns (
		reference varchar2(40) path '$.purchaseOrder.podate',
		nested path '$.purchaseOrder.items[*]' columns (
			name varchar2(16) path '$.name',
			price number path '$.price',
			quantity number path '$.quantity'
		)
	)) jt`

func TestPrefilterShapesThroughView(t *testing.T) {
	e := newPOEngine(t)
	mustExec(t, e, pushdownView)
	cases := []struct {
		sql  string
		want int
	}{
		// equality on a nested column
		{`select name from items_v where name = 'phone'`, 1},
		// flipped comparison
		{`select name from items_v where 300 < price`, 2},
		// IN list
		{`select name from items_v where name in ('phone', 'chair')`, 2},
		// BETWEEN
		{`select name from items_v where price between 50 and 110`, 2},
		// master-level column
		{`select count(*) from items_v where reference = '2015-03-04'`, 1},
		// parameterized
		{`select name from items_v where name = ?`, 1},
		// no prefilterable shape (function call) still works
		{`select name from items_v where length(name) = 5`, 3},
	}
	runAll := func(label string) {
		t.Helper()
		for _, c := range cases {
			var params []jsondom.Value
			if c.sql == `select name from items_v where name = ?` {
				params = []jsondom.Value{jsondom.String("ipad")}
			}
			r := mustExec(t, e, c.sql, params...)
			if len(r.Rows) != c.want {
				t.Errorf("%s %s: got %d rows, want %d", label, c.sql, len(r.Rows), c.want)
			}
		}
	}
	runAll("optimized")
	e.Planner.DisablePrefilter = true
	runAll("no-prefilter")
}

func TestMustExec(t *testing.T) {
	e := New()
	e.MustExec(`create table m (v number)`)
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec should panic on error")
		}
	}()
	e.MustExec(`select * from nope`)
}

func TestHasAggregateAndWindowHelpers(t *testing.T) {
	parse := func(sql string) *SelectStmt {
		t.Helper()
		stmt, err := ParseStatement(sql)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*SelectStmt)
	}
	agg := parse(`select sum(v) + count(*) from t where abs(v) in (1, max(v)) or v between 1 and min(v)`)
	for _, it := range agg.Items {
		if !hasAggregate(it.Expr) {
			t.Error("aggregate not detected in select item")
		}
	}
	if !hasAggregate(agg.Where) {
		t.Error("aggregate not detected in where")
	}
	plain := parse(`select v, upper(s) from t where v is null and s like 'a%'`)
	for _, it := range plain.Items {
		if hasAggregate(it.Expr) || hasWindow(it.Expr) {
			t.Error("false positive")
		}
	}
	win := parse(`select 1 + lag(v) over (order by v), nvl(row_number() over (order by v), 0) from t`)
	for _, it := range win.Items {
		if !hasWindow(it.Expr) {
			t.Error("window not detected")
		}
	}
}
