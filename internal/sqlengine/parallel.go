// Parallel partitioned scans. A parallelScanOp replaces the serial
// tableScan (+ residual filter) when the planner judges the table
// large enough: the row-id space is split into K contiguous
// partitions, one worker goroutine scans each partition through a
// clone of the scan, evaluates the residual WHERE locally, and sends
// surviving rows over a bounded channel. The default ordered merge
// drains the per-worker channels in partition order, reproducing the
// serial row order exactly; the unordered merge (opt-in) interleaves
// workers for lower latency when order is irrelevant.
//
// Workers share no mutable state: each owns its scan clone, its
// evaluation context, and its cancellation tick counter. The residual
// predicate expression itself is shared — its leaves are immutable
// during evaluation and compiled JSON paths (pathengine.Compiled) are
// race-safe by contract.

package sqlengine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/imc"
	"repro/internal/jsondom"
)

// defaultParallelMinRows is the table size below which a parallel scan
// is not worth the goroutine and channel overhead.
const defaultParallelMinRows = 512

// parChanCap bounds each worker's output channel, limiting the rows
// buffered ahead of the consumer.
const parChanCap = 64

// parBatchChanCap bounds the channels when workers deliver whole
// batches: the same cap would buffer batchSize times more rows.
const parBatchChanCap = 4

type parRow struct {
	row []jsondom.Value
	// b carries a whole batch when the template scan runs in batch
	// delivery mode (batchOut); ownership transfers to the consumer.
	b   *Batch
	err error
}

type parallelScanOp struct {
	planEstimate
	template *tableScan
	// filter is the residual WHERE absorbed into the workers (may be
	// nil); each worker evaluates its own clone.
	filter    Expr
	env       *planEnv
	degree    int
	unordered bool

	chans     []chan parRow // ordered merge: one channel per worker
	out       chan parRow   // unordered merge: shared channel
	cur       int
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	st        *OpStats
	// workers are the per-partition scan clones of the last Open, kept
	// so EXPLAIN ANALYZE can aggregate their batch chunk stats (read
	// only after Close has joined the worker goroutines).
	workers []*tableScan
	// held is the batch most recently received from a worker, owned by
	// the merge side: Next drains it row by row, NextBatch hands it to
	// the consumer and recycles it on the following call.
	held    *Batch
	heldPos int
	ticks   int
}

// parallelizeScan decides whether the FROM source plus residual WHERE
// can run as a parallel partitioned scan; it returns nil when the
// serial plan should be kept.
func (e *Engine) parallelizeScan(src rowSource, where Expr, env *planEnv) rowSource {
	if e.Planner.DisableParallelScan {
		return nil
	}
	scan, ok := src.(*tableScan)
	if !ok {
		return nil
	}
	// index-driven scans read a sparse row-id list, and sampling
	// depends on one deterministic RNG stream: both stay serial.
	if scan.rowIDsFn != nil || scan.samplePct > 0 {
		return nil
	}
	degree := e.Planner.ParallelDegree
	if degree <= 0 {
		degree = runtime.GOMAXPROCS(0)
	}
	if degree < 2 {
		return nil
	}
	minRows := e.Planner.ParallelMinRows
	if minRows <= 0 {
		minRows = defaultParallelMinRows
	}
	if scan.tab.MaxRowID() < minRows {
		return nil
	}
	return &parallelScanOp{
		template: scan, filter: where, env: env,
		degree: degree, unordered: e.Planner.ParallelUnordered,
	}
}

func (p *parallelScanOp) Schema() Schema { return p.template.Schema() }

// scanPartitions computes the worker row-id ranges for a scan
// template. For a batch-mode template they are aligned to
// imc.ChunkSize boundaries so no chunk is split between workers —
// every worker's lo lands on a chunk start and its kernels, zone maps,
// and selection bitmaps line up with the vector's chunk grid.
// Otherwise the table's default equal split. Shared by the parallel
// scan and the parallel operator layer (parexec.go), so both fan-outs
// slice the table identically.
func scanPartitions(scan *tableScan, degree int) [][2]int {
	if !scan.batchMode {
		return scan.tab.Partitions(degree)
	}
	n := scan.tab.MaxRowID()
	chunks := (n + imc.ChunkSize - 1) / imc.ChunkSize
	k := degree
	if k > chunks {
		k = chunks
	}
	var parts [][2]int
	for i := 0; i < k; i++ {
		lo := i * chunks / k * imc.ChunkSize
		hi := (i + 1) * chunks / k * imc.ChunkSize
		if hi > n {
			hi = n
		}
		if hi > lo {
			parts = append(parts, [2]int{lo, hi})
		}
	}
	return parts
}

// partitions computes this operator's worker ranges.
func (p *parallelScanOp) partitions() [][2]int { return scanPartitions(p.template, p.degree) }

func (p *parallelScanOp) Open(ec *ExecCtx) error {
	p.st = ec.statFor()
	p.stop = make(chan struct{})
	p.closeOnce = sync.Once{}
	p.chans, p.out, p.cur = nil, nil, 0
	p.workers = nil
	p.held, p.heldPos = nil, 0
	parts := p.partitions()
	if len(parts) == 0 {
		return nil
	}
	mParScans.Inc()
	mParWorkers.Add(int64(len(parts)))
	chanCap := parChanCap
	if p.template.batchOut {
		chanCap = parBatchChanCap
	}
	if p.unordered {
		p.out = make(chan parRow, chanCap*len(parts))
	} else {
		p.chans = make([]chan parRow, len(parts))
		for i := range p.chans {
			p.chans[i] = make(chan parRow, chanCap)
		}
	}
	p.wg.Add(len(parts))
	for i, part := range parts {
		scan := p.template.cloneForRange(part[0], part[1])
		p.workers = append(p.workers, scan)
		var ch chan parRow
		if !p.unordered {
			ch = p.chans[i]
		}
		// workers share the residual filter expression: its leaves are
		// immutable during evaluation and compiled JSON path state
		// (pathengine.Compiled) is race-safe by contract, so each worker
		// only needs its own evalCtx, built in worker()
		go p.worker(ec, scan, p.filter, ch)
	}
	if p.unordered {
		go func() {
			p.wg.Wait()
			close(p.out)
		}()
	}
	return nil
}

// worker scans one partition. ch is the worker-owned channel under the
// ordered merge (closed on exit); under the unordered merge ch is nil
// and rows go to the shared p.out.
func (p *parallelScanOp) worker(ec *ExecCtx, scan *tableScan, pred Expr, ch chan parRow) {
	defer p.wg.Done()
	var delivered int64
	defer func() { mParRows.Add(delivered) }()
	out := ch
	if out == nil {
		out = p.out
	} else {
		defer close(ch)
	}
	if err := scan.Open(ec); err != nil {
		p.send(out, parRow{err: err})
		return
	}
	defer scan.Close() //nolint:errcheck // flushes the scan's row count
	var ctx *evalCtx
	if pred != nil {
		ctx = p.env.bindCtx(scan.Schema(), pred)
	}
	if scan.batchOut {
		p.workerBatches(ec, scan, ctx, pred, out, &delivered)
		return
	}
	ticks := 0
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		// each worker owns its tick counter (execctx.go): the shared
		// ExecCtx is only read, keeping workers race-free
		if err := ec.tickErr(&ticks); err != nil {
			p.send(out, parRow{err: err})
			return
		}
		row, ok, err := scan.Next(ec)
		if err != nil {
			p.send(out, parRow{err: err})
			return
		}
		if !ok {
			return
		}
		if pred != nil {
			ctx.row = row
			v, err := evalExpr(ctx, pred)
			if err != nil {
				p.send(out, parRow{err: err})
				return
			}
			if !truthy(v) {
				continue
			}
		}
		if !p.send(out, parRow{row: row}) {
			return
		}
		delivered++
	}
}

// workerBatches is the worker loop under batch delivery: the scan's
// batches cross the channel whole. Ownership transfers — the scan
// detaches each batch before the send, so it never recycles what the
// consumer may still hold; a residual filter compacts survivors into a
// worker-owned batch first (and recycles the scan's).
func (p *parallelScanOp) workerBatches(ec *ExecCtx, scan *tableScan, ctx *evalCtx, pred Expr, out chan parRow, delivered *int64) {
	ticks := 0
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if err := ec.tickErr(&ticks); err != nil {
			p.send(out, parRow{err: err})
			return
		}
		b, err := scan.NextBatch(ec, 0)
		if err != nil {
			p.send(out, parRow{err: err})
			return
		}
		if b == nil {
			return
		}
		scan.detachBatch()
		if pred != nil {
			kept := getBatch()
			for i := 0; i < b.Len(); i++ {
				row := b.Row(i)
				ctx.row = row
				v, err := evalExpr(ctx, pred)
				if err != nil {
					putBatch(kept)
					putBatch(b)
					p.send(out, parRow{err: err})
					return
				}
				if truthy(v) {
					kept.add(row)
				}
			}
			putBatch(b)
			if kept.Len() == 0 {
				putBatch(kept)
				continue
			}
			b = kept
		}
		n := int64(b.Len())
		if !p.send(out, parRow{b: b}) {
			putBatch(b)
			return
		}
		*delivered += n
	}
}

// send delivers r unless the operator is being closed; a worker
// blocked on a full channel unblocks through the stop case.
func (p *parallelScanOp) send(ch chan parRow, r parRow) bool {
	select {
	case ch <- r:
		return true
	case <-p.stop:
		return false
	}
}

func (p *parallelScanOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if p.st != nil {
		t0 := time.Now()
		defer func() { p.st.observe(time.Since(t0), ok) }()
	}
	for {
		if err := ec.tickErr(&p.ticks); err != nil {
			return nil, false, err
		}
		if p.held != nil {
			if p.heldPos < p.held.Len() {
				row := p.held.Row(p.heldPos)
				p.heldPos++
				return row, true, nil
			}
			putBatch(p.held)
			p.held = nil
		}
		r, more := p.recv()
		if !more {
			return nil, false, nil
		}
		if r.err != nil {
			return nil, false, r.err
		}
		if r.b != nil {
			p.held, p.heldPos = r.b, 0
			continue
		}
		return r.row, true, nil
	}
}

// batchReady mirrors the template: batch delivery is a plan-time
// property, so the consumer can commit to NextBatch before Open.
func (p *parallelScanOp) batchReady() bool { return p.template.batchOut }

// NextBatch hands worker batches to the consumer in merge order,
// recycling the previous one per the producer contract.
func (p *parallelScanOp) NextBatch(ec *ExecCtx, max int) (b *Batch, err error) {
	if p.st != nil {
		t0 := time.Now()
		defer func() { p.st.observeBatch(time.Since(t0), b.Len()) }()
	}
	putBatch(p.held)
	p.held = nil
	for {
		if err := ec.tickErr(&p.ticks); err != nil {
			return nil, err
		}
		r, more := p.recv()
		if !more {
			return nil, nil
		}
		if r.err != nil {
			return nil, r.err
		}
		if r.b == nil {
			continue // row-mode output cannot appear under batchOut; skip defensively
		}
		if max > 0 {
			r.b.truncate(max)
		}
		p.held = r.b
		return r.b, nil
	}
}

// recv pulls the next merge input: the shared channel under the
// unordered merge, the per-worker channels in partition order
// otherwise.
func (p *parallelScanOp) recv() (parRow, bool) {
	if p.unordered {
		if p.out == nil {
			return parRow{}, false
		}
		return recvCounted(p.out)
	}
	for p.cur < len(p.chans) {
		r, ok := recvCounted(p.chans[p.cur])
		if !ok {
			p.cur++
			continue
		}
		return r, true
	}
	return parRow{}, false
}

// recvCounted receives one merge input, counting a stall when the
// channel is empty at the moment of the receive (the consumer is ahead
// of the producers — the signal behind merge_stalls).
func recvCounted(ch chan parRow) (parRow, bool) {
	select {
	case r, ok := <-ch:
		return r, ok
	default:
	}
	mParMergeStalls.Inc()
	r, ok := <-ch
	return r, ok
}

// Close stops all workers and waits for them, so no goroutine outlives
// the query — including workers blocked mid-send when the consumer
// terminated early (LIMIT, error, cancellation).
func (p *parallelScanOp) Close() error {
	putBatch(p.held)
	p.held = nil
	if p.stop != nil {
		p.closeOnce.Do(func() { close(p.stop) })
	}
	// join unconditionally: before Open, Wait on a zero group is a
	// no-op, and an early Close must never abandon launched workers
	p.wg.Wait()
	return nil
}

func (p *parallelScanOp) opName() string {
	merge := "ordered"
	if p.unordered {
		merge = "unordered"
	}
	name := fmt.Sprintf("ParallelScan(%s degree=%d %s", p.template.tab.Name, p.degree, merge)
	if p.filter != nil {
		name += " filtered"
	}
	if p.template.batchMode {
		name += " batch"
	}
	if n := len(p.template.vecFilters) + len(p.template.vecSpecs) + len(p.template.batchKernels); n > 0 {
		name += fmt.Sprintf(" vec-filters=%d", n)
	}
	return name + ")"
}
func (p *parallelScanOp) opChildren() []rowSource { return nil }
func (p *parallelScanOp) opStat() *OpStats        { return p.st }

// opExtraLines aggregates the workers' batch chunk stats for EXPLAIN
// ANALYZE. Safe only after Close: the workers have been joined, so
// their counters are quiescent.
func (p *parallelScanOp) opExtraLines() []string {
	var chunks, pruned, selected int64
	var kstats []batchKernelStat
	var labels []string
	for _, w := range p.workers {
		chunks += w.statChunks
		pruned += w.statPruned
		selected += w.statSelRows
		if len(w.kernelStats) > 0 {
			if kstats == nil {
				kstats = make([]batchKernelStat, len(w.kernelStats))
				labels = w.runLabels
			}
			for i := range w.kernelStats {
				if i < len(kstats) {
					kstats[i].chunks += w.kernelStats[i].chunks
					kstats[i].pruned += w.kernelStats[i].pruned
					kstats[i].in += w.kernelStats[i].in
					kstats[i].out += w.kernelStats[i].out
				}
			}
		}
	}
	if chunks == 0 {
		return nil
	}
	lines := []string{fmt.Sprintf("vec-batch: chunks=%d pruned=%d selected=%d", chunks, pruned, selected)}
	for i, ks := range kstats {
		label := "?"
		if i < len(labels) {
			label = labels[i]
		}
		lines = append(lines, fmt.Sprintf("vec[%s]: chunks=%d pruned=%d selectivity=%s",
			label, ks.chunks, ks.pruned, pctOf(ks.out, ks.in)))
	}
	return lines
}
