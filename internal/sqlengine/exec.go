// Row-source executor: the Open/Next/Close iterator model of the row
// source API the paper cites for JSON_TABLE ([9], §5.1), used here for
// every operator.
//
// Every operator receives the query's *ExecCtx in Open and Next: the
// context carries cooperative cancellation (checked every
// cancelCheckInterval rows in scans and pipeline-breaker build loops),
// the per-operator stats sinks EXPLAIN ANALYZE renders, and the memory
// accountant pipeline breakers charge for materialized rows.
//
// Aggregate and window function results flow through the pipeline as
// synthetic columns appended by groupAggOp/windowOp; expression
// evaluation resolves the originating AST nodes to those columns via
// the shared planEnv maps.

package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dataguide"
	"repro/internal/imc"
	"repro/internal/jsondom"
	"repro/internal/pathengine"
	"repro/internal/sqljson"
	"repro/internal/store"
)

type rowSource interface {
	Open(*ExecCtx) error
	Next(*ExecCtx) ([]jsondom.Value, bool, error)
	Close() error
	Schema() Schema
}

// opNode is implemented by every operator so EXPLAIN can walk the
// plan tree and render per-operator stats without wrapper nodes (which
// would break the planner's type assertions on concrete operators).
type opNode interface {
	opName() string
	opChildren() []rowSource
	opStat() *OpStats
}

// opExtraNode is an optional opNode extension: operators with
// per-predicate runtime detail (the batch scan's chunk pruning and
// selectivity) return extra indented lines for EXPLAIN ANALYZE.
type opExtraNode interface {
	opExtraLines() []string
}

// planEnv is shared by all operators of one plan: bind parameters plus
// the positions of aggregate/window results within the row.
type planEnv struct {
	params  []jsondom.Value
	aggCols map[*FuncCall]int
	winCols map[*WindowFunc]int
}

func (e *planEnv) ctx(sch Schema, row []jsondom.Value) *evalCtx {
	return &evalCtx{schema: sch, row: row, params: e.params,
		aggCols: e.aggCols, winCols: e.winCols}
}

// bindCtx prepares a reusable evaluation context for an operator: the
// column references of the given expressions are resolved against the
// schema once, so per-row evaluation is a pointer-keyed map hit.
func (e *planEnv) bindCtx(sch Schema, exprs ...Expr) *evalCtx {
	ctx := e.ctx(sch, nil)
	ctx.colIdx = make(map[*ColRef]int)
	for _, x := range exprs {
		bindCols(x, sch, ctx.colIdx)
	}
	return ctx
}

func bindCols(e Expr, sch Schema, m map[*ColRef]int) {
	for _, c := range exprColRefs(e) {
		if i, err := sch.Resolve(c.Table, c.Name); err == nil {
			m[c] = i
		}
	}
}

// InMemorySource substitutes column values during a scan, modeling the
// dual-format in-memory store of §5.2: OSON bytes in place of JSON
// text (OSON-IMC) and pre-computed virtual column vectors (VC-IMC).
type InMemorySource interface {
	// Substitute returns the in-memory value for (rowID, column), or
	// ok=false when the column is not populated in memory.
	Substitute(rowID int, col string) (jsondom.Value, bool)
}

// VectorFilterSource is an optional InMemorySource extension: it
// compiles simple comparison predicates over in-memory column vectors
// so the scan can skip non-matching rows before materializing them —
// the columnar predicate evaluation of §5.2.1.
type VectorFilterSource interface {
	InMemorySource
	// CompileFilter returns a per-row predicate for (col op operands),
	// ok=false when the column has no vector or the shape is
	// unsupported. op is one of = != < <= > >= between.
	CompileFilter(col, op string, operands []jsondom.Value) (func(rowID int) bool, bool)
}

// BatchFilterSource is the batch-at-a-time extension of
// VectorFilterSource: predicates compile to chunk kernels that fill a
// selection bitmap over imc.ChunkSize rows at once, with per-chunk
// zone-map pruning. A source implementing it switches the scan from
// per-row closure calls to the vectorized batch loop; CompileFilter
// remains the fallback for shapes the batch compiler declines.
type BatchFilterSource interface {
	VectorFilterSource
	// CompileBatchFilter returns a chunk kernel for (col op operands);
	// ok=false declines exactly where CompileFilter does.
	CompileBatchFilter(col, op string, operands []jsondom.Value) (imc.BatchKernel, bool)
}

// ---------------------------------------------------------------------------
// table scan

// vecFilterSpec is a vector predicate whose operand values are known
// only at execution time (bind parameters): Open compiles it against
// the vector source with the current bind values, and falls back to
// evaluating the original conjunct per materialized row when the
// vector compile declines (missing vector, operand type mismatch).
type vecFilterSpec struct {
	col, op  string
	operands []Expr // Literal or Param leaves
	orig     Expr   // the source conjunct, for the row-level fallback
}

// operandValues resolves the spec operands against the bind
// parameters; ok=false defers the conjunct to the row-level fallback
// (which reports missing-parameter errors with the usual message).
func (v *vecFilterSpec) operandValues(env *planEnv) ([]jsondom.Value, bool) {
	vals := make([]jsondom.Value, len(v.operands))
	for i, x := range v.operands {
		switch t := x.(type) {
		case *Literal:
			vals[i] = t.Val
		case *Param:
			if env == nil || t.Index >= len(env.params) {
				return nil, false
			}
			vals[i] = env.params[t.Index]
		default:
			return nil, false
		}
	}
	return vals, true
}

type tableScan struct {
	planEstimate
	tab   *store.Table
	alias string
	sch   Schema
	// needVC marks virtual columns the query references; unreferenced
	// virtual columns are not computed (left NULL).
	needVC []bool
	cols   []store.Column
	sub    InMemorySource // IMC substitution, may be nil
	// vecFilters are compiled columnar predicates; rows failing any of
	// them are skipped before materialization (§5.2.1). They close only
	// over immutable vector data, so a cached plan shares them across
	// executions and parallel workers.
	vecFilters []func(rowID int) bool
	// vecSpecs are parameter-dependent vector predicates, compiled at
	// Open with the execution's bind values.
	vecSpecs []vecFilterSpec
	// batchMode switches the scan to chunk-at-a-time iteration:
	// batchKernels (plan-time compiled constant predicates) plus any
	// vecSpecs that batch-compile at Open fill a selection bitmap per
	// imc.ChunkSize chunk, with zone-map-pruned chunks skipped whole.
	// bsrc is the batch compiler (the same object as sub); batchLabels
	// name the plan-time kernels ("col op") for EXPLAIN ANALYZE.
	batchMode    bool
	batchKernels []imc.BatchKernel
	batchLabels  []string
	bsrc         BatchFilterSource
	// rowIDsFn, when non-nil, resolves the restricted row-id list at
	// Open (an index-driven scan over JSON search index postings); the
	// postings are read per execution, so a cached plan sees rows
	// inserted after it was planned.
	rowIDsFn func() []int
	env      *planEnv
	// lo/hi restrict the scan to the row-id range [lo, hi) — the
	// per-worker partition of a parallel scan. hi == 0 means the full
	// table.
	lo, hi int

	samplePct float64
	rng       *rand.Rand

	// rows/tombs are the Open-time snapshot: one lock acquisition for
	// the whole scan instead of a Table.Get RLock per row.
	rows  []store.Row
	tombs []bool

	rowIDs       []int // resolved by Open from rowIDsFn
	idPos        int
	vecRuntime   []func(rowID int) bool // vecSpecs compiled by Open
	fallbackPred Expr
	fallbackCtx  *evalCtx

	// batch iteration state (set up by Open when batchMode):
	// batchActive is true once at least one kernel compiled; batchRun
	// is the execution's kernel list (plan-time + Open-compiled), sel
	// the reusable per-chunk selection bitmap.
	batchActive bool
	batchRun    []imc.BatchKernel
	runLabels   []string
	sel         *imc.Bitmap
	selActive   bool
	selPos      int
	chunkLo     int
	nextChunkLo int
	// chunksSeen/chunksPruned/selRows accumulate operator-locally and
	// are flushed to the imc.scan.* counters at Close; the stat*
	// mirrors survive the flush for EXPLAIN ANALYZE rendering.
	chunksSeen, chunksPruned, selRows   int64
	statChunks, statPruned, statSelRows int64
	kernelStats                         []batchKernelStat // collect mode only

	pos, maxID int
	ticks      int
	// rowsOut accumulates emitted rows operator-locally; Close flushes
	// it to the shared sql.scan.rows counter in one atomic add.
	rowsOut int64
	st      *OpStats

	// batchOut switches the scan's parent-facing contract to batch
	// delivery (NextBatch); orthogonal to batchMode, which gates the
	// kernel-driven chunk iteration. arena carves the output rows, out
	// is the pooled batch recycled on the next NextBatch call.
	batchOut bool
	arena    rowArena
	out      *Batch
}

func newTableScan(tab *store.Table, alias string, needed map[string]bool, sub InMemorySource, samplePct float64, env *planEnv) *tableScan {
	cols := tab.Columns()
	ts := &tableScan{tab: tab, alias: alias, cols: cols, sub: sub, samplePct: samplePct, env: env}
	for _, c := range cols {
		ts.sch = append(ts.sch, ColMeta{Table: alias, Name: c.Name, Hidden: c.Hidden})
		ts.needVC = append(ts.needVC, needed == nil || needed[c.Name])
	}
	return ts
}

// cloneForRange derives a worker scan restricted to [lo, hi). The
// immutable plan state (schema, columns, IMC source, vector filters)
// is shared; all iteration state is fresh.
func (s *tableScan) cloneForRange(lo, hi int) *tableScan {
	return &tableScan{
		tab: s.tab, alias: s.alias, sch: s.sch, needVC: s.needVC,
		cols: s.cols, sub: s.sub, vecFilters: s.vecFilters,
		vecSpecs: s.vecSpecs, env: s.env,
		batchMode: s.batchMode, batchKernels: s.batchKernels,
		batchLabels: s.batchLabels, bsrc: s.bsrc, batchOut: s.batchOut,
		lo: lo, hi: hi,
	}
}

// batchKernelStat tracks one kernel's pruning and selectivity for
// EXPLAIN ANALYZE (collect mode only): chunks/pruned count the chunks
// the kernel's zone-map check saw and discarded; in/out count the
// selection bits entering and surviving its And.
type batchKernelStat struct {
	chunks, pruned int64
	in, out        int64
}

func (s *tableScan) Open(ec *ExecCtx) error {
	s.st = ec.statFor()
	s.rows, s.tombs = s.tab.Snapshot()
	s.pos = s.lo
	s.idPos = 0
	s.ticks = 0
	s.rowsOut = 0
	s.maxID = len(s.rows)
	if s.hi > 0 && s.hi < s.maxID {
		s.maxID = s.hi
	}
	if s.samplePct > 0 {
		// deterministic sampling for reproducible experiments
		s.rng = rand.New(rand.NewSource(42))
	}
	s.rowIDs = nil
	if s.rowIDsFn != nil {
		s.rowIDs = s.rowIDsFn()
	}
	s.vecRuntime, s.fallbackPred, s.fallbackCtx = nil, nil, nil
	s.batchRun, s.runLabels, s.batchActive = nil, nil, false
	if s.batchMode {
		s.batchRun = make([]imc.BatchKernel, 0, len(s.batchKernels)+len(s.vecSpecs))
		s.batchRun = append(s.batchRun, s.batchKernels...)
		s.runLabels = append(make([]string, 0, cap(s.batchRun)), s.batchLabels...)
	}
	if len(s.vecSpecs) > 0 {
		vfs, _ := s.sub.(VectorFilterSource)
		for i := range s.vecSpecs {
			spec := &s.vecSpecs[i]
			if vals, ok := spec.operandValues(s.env); ok {
				// bind values are in hand: prefer a batch kernel, then a
				// per-row vector closure, then the row-level fallback
				if s.batchMode && s.bsrc != nil {
					if k, ok := s.bsrc.CompileBatchFilter(spec.col, spec.op, vals); ok {
						s.batchRun = append(s.batchRun, k)
						s.runLabels = append(s.runLabels, spec.col+" "+spec.op)
						continue
					}
				}
				if vfs != nil {
					if f, ok := vfs.CompileFilter(spec.col, spec.op, vals); ok {
						s.vecRuntime = append(s.vecRuntime, f)
						continue
					}
				}
			}
			s.fallbackPred = andExpr(s.fallbackPred, spec.orig)
		}
		if s.fallbackPred != nil {
			s.fallbackCtx = s.env.bindCtx(s.sch, s.fallbackPred)
		}
	}
	// batch iteration needs at least one kernel and full-range row-id
	// iteration (index-driven and sampled scans stay row-at-a-time)
	s.batchActive = s.batchMode && len(s.batchRun) > 0 && s.rowIDs == nil && s.rng == nil
	s.chunksSeen, s.chunksPruned, s.selRows = 0, 0, 0
	s.statChunks, s.statPruned, s.statSelRows = 0, 0, 0
	s.kernelStats = nil
	s.selActive = false
	if s.batchActive {
		s.sel = imc.NewBitmap(imc.ChunkSize)
		// start at the chunk containing lo; bits before lo are skipped
		// during the drain (parallel partitions are chunk-aligned, so in
		// practice lo is a chunk boundary)
		s.nextChunkLo = s.lo - s.lo%imc.ChunkSize
		if s.st != nil {
			s.kernelStats = make([]batchKernelStat, len(s.batchRun))
		}
	}
	return nil
}

func (s *tableScan) Schema() Schema { return s.sch }

func (s *tableScan) deleted(rowID int) bool {
	return rowID < len(s.tombs) && s.tombs[rowID]
}

func (s *tableScan) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if s.st != nil {
		t0 := time.Now()
		defer func() { s.st.observe(time.Since(t0), ok) }()
	}
	return s.next1(ec)
}

// next1 is the row step shared by Next and NextBatch: the stats
// wrappers differ, the iteration does not.
func (s *tableScan) next1(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	if s.batchActive {
		return s.nextBatchRow(ec)
	}
	for {
		if err := ec.tickErr(&s.ticks); err != nil {
			return nil, false, err
		}
		var rowID int
		var row store.Row
		if s.rowIDs != nil {
			if s.idPos >= len(s.rowIDs) {
				return nil, false, nil
			}
			rowID = s.rowIDs[s.idPos]
			s.idPos++
			if rowID < 0 || rowID >= len(s.rows) || s.deleted(rowID) {
				continue
			}
			row = s.rows[rowID]
		} else {
			if s.pos >= s.maxID {
				return nil, false, nil
			}
			rowID = s.pos
			s.pos++
			if s.deleted(rowID) {
				continue
			}
			row = s.rows[rowID]
		}
		if s.rng != nil && s.rng.Float64()*100 >= s.samplePct {
			continue
		}
		if !s.passVecFilters(rowID) {
			continue
		}
		out, match, err := s.materialize(rowID, row)
		if err != nil {
			return nil, false, err
		}
		if !match {
			continue
		}
		s.rowsOut++
		return out, true, nil
	}
}

// materialize builds the output row for rowID — IMC substitution,
// stored values, referenced virtual columns — and applies the
// row-level fallback predicate; match=false rejects the row.
func (s *tableScan) materialize(rowID int, row store.Row) (out []jsondom.Value, match bool, err error) {
	out = s.arena.alloc(len(s.cols))
	for i, c := range s.cols {
		// unreferenced columns are never read downstream: skip the
		// in-memory substitution (and its per-column decode) entirely
		if !s.needVC[i] {
			if c.Virtual {
				out[i] = null
			} else {
				out[i] = row[i]
			}
			continue
		}
		if s.sub != nil {
			if v, ok := s.sub.Substitute(rowID, c.Name); ok {
				out[i] = v
				continue
			}
		}
		if !c.Virtual {
			out[i] = row[i]
			continue
		}
		if c.Expr == nil {
			out[i] = null
			continue
		}
		v, err := c.Expr(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	if s.fallbackCtx != nil {
		s.fallbackCtx.row = out
		v, err := evalExpr(s.fallbackCtx, s.fallbackPred)
		if err != nil {
			return nil, false, err
		}
		if !truthy(v) {
			return nil, false, nil
		}
	}
	return out, true, nil
}

// nextBatchRow is the chunk-at-a-time scan loop: nextSelID drains the
// selection bitmap (advancing chunks with zone-map pruning as needed)
// and only the surviving rows are materialized. The selection position
// persists across calls, so a consumer that stops early — a satisfied
// LIMIT budget — resumes mid-chunk without re-materializing anything.
func (s *tableScan) nextBatchRow(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	for {
		// a selective residual can reject many materialized rows per call
		if err := ec.tickErr(&s.ticks); err != nil {
			return nil, false, err
		}
		rowID, more, err := s.nextSelID(ec)
		if err != nil || !more {
			return nil, false, err
		}
		out, match, err := s.materialize(rowID, s.rows[rowID])
		if err != nil {
			return nil, false, err
		}
		if !match {
			continue
		}
		s.rowsOut++
		return out, true, nil
	}
}

// advanceChunk moves the batch iteration to the next chunk with
// surviving rows: per chunk, every kernel gets a zone-map veto (a
// pruned chunk costs two comparisons total), then the selection bitmap
// is reset to all-ones and each kernel ANDs its matches in. Returns
// false at the end of the scan range. Cancellation is checked once per
// chunk.
func (s *tableScan) advanceChunk(ec *ExecCtx) (bool, error) {
	for {
		if s.nextChunkLo >= s.maxID {
			return false, nil
		}
		if err := ec.tickErr(&s.ticks); err != nil {
			return false, err
		}
		clo := s.nextChunkLo
		chunk := clo / imc.ChunkSize
		chi := clo + imc.ChunkSize
		if chi > s.maxID {
			chi = s.maxID
		}
		s.nextChunkLo = clo + imc.ChunkSize
		s.chunksSeen++
		pruned := false
		for ki := range s.batchRun {
			if s.kernelStats != nil {
				s.kernelStats[ki].chunks++
			}
			if s.batchRun[ki].Prune(chunk) {
				if s.kernelStats != nil {
					s.kernelStats[ki].pruned++
				}
				pruned = true
				break
			}
		}
		if pruned {
			s.chunksPruned++
			continue
		}
		s.sel.Reset(chi - clo)
		if s.kernelStats != nil {
			in := int64(chi - clo)
			for ki := range s.batchRun {
				s.batchRun[ki].And(chunk, s.sel)
				outBits := int64(s.sel.Count())
				s.kernelStats[ki].in += in
				s.kernelStats[ki].out += outBits
				in = outBits
			}
		} else {
			for ki := range s.batchRun {
				s.batchRun[ki].And(chunk, s.sel)
			}
		}
		s.selRows += int64(s.sel.Count())
		s.chunkLo = clo
		s.selPos = 0
		s.selActive = true
		return true, nil
	}
}

func (s *tableScan) passVecFilters(rowID int) bool {
	for _, f := range s.vecFilters {
		if !f(rowID) {
			return false
		}
	}
	for _, f := range s.vecRuntime {
		if !f(rowID) {
			return false
		}
	}
	return true
}

func (s *tableScan) Close() error {
	putBatch(s.out)
	s.out = nil
	if s.rowsOut > 0 {
		mScanRows.Add(s.rowsOut)
		s.rowsOut = 0
	}
	if s.chunksSeen > 0 {
		mIMCScanChunks.Add(s.chunksSeen)
		mIMCScanPruned.Add(s.chunksPruned)
		mIMCScanSelRows.Add(s.selRows)
		// keep display mirrors: EXPLAIN ANALYZE renders after Close
		s.statChunks += s.chunksSeen
		s.statPruned += s.chunksPruned
		s.statSelRows += s.selRows
		s.chunksSeen, s.chunksPruned, s.selRows = 0, 0, 0
	}
	return nil
}

func (s *tableScan) opName() string {
	name := fmt.Sprintf("TableScan(%s", s.tab.Name)
	if s.rowIDsFn != nil {
		name += " via-index"
	}
	if s.batchMode {
		name += " batch"
	}
	if n := len(s.vecFilters) + len(s.vecSpecs) + len(s.batchKernels); n > 0 {
		name += fmt.Sprintf(" vec-filters=%d", n)
	}
	if s.samplePct > 0 {
		name += fmt.Sprintf(" sample=%.0f%%", s.samplePct)
	}
	return name + ")"
}
func (s *tableScan) opChildren() []rowSource { return nil }
func (s *tableScan) opStat() *OpStats        { return s.st }

// opExtraLines reports the batch scan's chunk accounting for EXPLAIN
// ANALYZE: one summary line plus, in collect mode, one line per
// vector predicate with its chunk pruning and bit selectivity.
func (s *tableScan) opExtraLines() []string {
	if s.statChunks == 0 {
		return nil
	}
	lines := []string{fmt.Sprintf("vec-batch: chunks=%d pruned=%d selected=%d",
		s.statChunks, s.statPruned, s.statSelRows)}
	for ki, ks := range s.kernelStats {
		label := "?"
		if ki < len(s.runLabels) {
			label = s.runLabels[ki]
		}
		lines = append(lines, fmt.Sprintf("vec[%s]: chunks=%d pruned=%d selectivity=%s",
			label, ks.chunks, ks.pruned, pctOf(ks.out, ks.in)))
	}
	return lines
}

// pctOf formats out/in as a percentage; "-" when nothing flowed in.
func pctOf(out, in int64) string {
	if in <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(out)/float64(in))
}

// ---------------------------------------------------------------------------
// filter / project / limit

type filterOp struct {
	planEstimate
	in    rowSource
	pred  Expr
	env   *planEnv
	ctx   *evalCtx
	st    *OpStats
	ticks int
	// batch enables batch pass-through (plan-time flag); bin is the
	// input's batch face when it actually batches this execution, out
	// the filter's pooled survivor batch.
	batch bool
	bin   batchSource
	out   *Batch
}

func (f *filterOp) Open(ec *ExecCtx) error {
	f.st = ec.statFor()
	f.ctx = f.env.bindCtx(f.in.Schema(), f.pred)
	f.bin = nil
	if f.batch {
		f.bin = batchInput(f.in)
	}
	return f.in.Open(ec)
}
func (f *filterOp) Close() error {
	putBatch(f.out)
	f.out = nil
	return f.in.Close()
}
func (f *filterOp) Schema() Schema { return f.in.Schema() }

func (f *filterOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if f.st != nil {
		t0 := time.Now()
		defer func() { f.st.observe(time.Since(t0), ok) }()
	}
	for {
		// a selective predicate over a non-ticking child can spin
		// unboundedly between emitted rows, so the filter ticks too
		if err := ec.tickErr(&f.ticks); err != nil {
			return nil, false, err
		}
		row, ok, err := f.in.Next(ec)
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.row = row
		v, err := evalExpr(f.ctx, f.pred)
		if err != nil {
			return nil, false, err
		}
		if truthy(v) {
			return row, true, nil
		}
	}
}

func (f *filterOp) opName() string          { return "Filter" }
func (f *filterOp) opChildren() []rowSource { return []rowSource{f.in} }
func (f *filterOp) opStat() *OpStats        { return f.st }

type projectOp struct {
	planEstimate
	in    rowSource
	exprs []Expr
	sch   Schema
	env   *planEnv
	ctx   *evalCtx
	st    *OpStats
	// batch enables 1:1 batch projection; output rows are arena-carved
	// so consumers may retain them without a copy.
	batch bool
	bin   batchSource
	out   *Batch
	arena rowArena
}

func (p *projectOp) Open(ec *ExecCtx) error {
	p.st = ec.statFor()
	p.ctx = p.env.bindCtx(p.in.Schema(), p.exprs...)
	p.bin = nil
	if p.batch {
		p.bin = batchInput(p.in)
	}
	return p.in.Open(ec)
}
func (p *projectOp) Close() error {
	putBatch(p.out)
	p.out = nil
	return p.in.Close()
}
func (p *projectOp) Schema() Schema { return p.sch }

func (p *projectOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if p.st != nil {
		t0 := time.Now()
		defer func() { p.st.observe(time.Since(t0), ok) }()
	}
	row, ok, err := p.in.Next(ec)
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.row = row
	out = p.arena.alloc(len(p.exprs))
	for i, e := range p.exprs {
		v, err := evalExpr(p.ctx, e)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) opName() string          { return "Project" }
func (p *projectOp) opChildren() []rowSource { return []rowSource{p.in} }
func (p *projectOp) opStat() *OpStats        { return p.st }

type limitOp struct {
	planEstimate
	in    rowSource
	limit int
	n     int
	// inClosed: once the limit is reached the upstream is closed
	// eagerly so scans (and parallel scan workers) stop doing work the
	// query will never observe.
	inClosed bool
	st       *OpStats
	// batch threads the remaining-row budget into the input's batch
	// materialization, so a batch scan below stops mid-chunk instead of
	// materializing a whole final chunk the limit then discards.
	batch bool
	bin   batchSource
}

func (l *limitOp) Open(ec *ExecCtx) error {
	l.st = ec.statFor()
	l.n = 0
	l.inClosed = false
	l.bin = nil
	if l.batch {
		l.bin = batchInput(l.in)
	}
	return l.in.Open(ec)
}

func (l *limitOp) Close() error {
	if l.inClosed {
		return nil
	}
	l.inClosed = true
	return l.in.Close()
}

func (l *limitOp) Schema() Schema { return l.in.Schema() }

func (l *limitOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if l.st != nil {
		t0 := time.Now()
		defer func() { l.st.observe(time.Since(t0), ok) }()
	}
	if l.n >= l.limit {
		// early termination: release upstream resources now rather
		// than when the whole plan is closed
		if !l.inClosed {
			l.inClosed = true
			if err := l.in.Close(); err != nil {
				return nil, false, err
			}
		}
		return nil, false, nil
	}
	row, ok, err := l.in.Next(ec)
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return row, true, nil
}

func (l *limitOp) opName() string          { return fmt.Sprintf("Limit(%d)", l.limit) }
func (l *limitOp) opChildren() []rowSource { return []rowSource{l.in} }
func (l *limitOp) opStat() *OpStats        { return l.st }

// ---------------------------------------------------------------------------
// JSON_TABLE lateral apply

type jsonTableOp struct {
	planEstimate
	left rowSource // may be nil when JSON_TABLE is the only FROM item
	ref  *JSONTableRef
	sch  Schema
	env  *planEnv

	leftRow []jsondom.Value
	pending [][]jsondom.Value
	pi      int
	done    bool
	argCtx  *evalCtx
	st      *OpStats
	ticks   int
	// preFilters are implied JSON_EXISTS path predicates; documents
	// failing any of them are skipped before row expansion (§6.3).
	preFilters []*pathengine.Compiled
	// preSpecs are prefilter candidates that reference bind parameters:
	// their constants are known only at execution time, so Open
	// translates them with the current bind values into runFilters.
	preSpecs   []Expr
	runFilters []*pathengine.Compiled
	// arena carves the merged left+expanded output rows.
	arena rowArena
	// batch enables pooled-batch delivery of the expanded rows (plan
	// flag, copied by clonePlan); out is the batch currently on loan to
	// the consumer.
	batch bool
	out   *Batch
	// exp is the pooled expansion scratch (execution state: lazily
	// built per instance, never copied by clonePlan, so cached-plan
	// clones and parallel worker clones each own one). emitPend and
	// emitBatch are the pre-bound emit callbacks (built once so the
	// per-document Expand call allocates no closure); bsink is the
	// batch on loan to emitBatch during NextBatch.
	exp       *sqljson.ExpandState
	emitPend  func([]jsondom.Value) error
	emitBatch func([]jsondom.Value) error
	bsink     *Batch
	// expansion accounting for sql.jsontable.* metrics and EXPLAIN
	// ANALYZE: base is the state's counter snapshot at Open, pruned
	// counts prefilter-rejected documents this execution, lastStats/
	// lastPruned hold the flushed per-execution deltas for EXPLAIN.
	base       sqljson.ExpandStats
	pruned     int64
	lastStats  sqljson.ExpandStats
	lastPruned int64
}

func newJSONTableOp(left rowSource, ref *JSONTableRef, env *planEnv) *jsonTableOp {
	op := &jsonTableOp{left: left, ref: ref, env: env}
	if left != nil {
		op.sch = append(op.sch, left.Schema()...)
	}
	for _, name := range ref.ColNames {
		op.sch = append(op.sch, ColMeta{Table: ref.Alias, Name: name})
	}
	return op
}

func (j *jsonTableOp) Open(ec *ExecCtx) error {
	j.st = ec.statFor()
	j.pending, j.pi, j.done = j.pending[:0], 0, false
	j.leftRow = nil
	j.runFilters = nil
	for _, c := range j.preSpecs {
		if pf, ok := translatePrefilter(j.ref, c, j.env.params); ok {
			j.runFilters = append(j.runFilters, pf)
		}
	}
	var sch Schema
	if j.left != nil {
		sch = j.left.Schema()
	}
	j.argCtx = j.env.bindCtx(sch, j.ref.Arg)
	if j.exp == nil {
		// execution state, never copied by clonePlan: cached-plan clones
		// and parallel worker clones each check one out of the def's
		// pool on Open (and return it on Close), so evaluation arenas
		// and value dictionaries stay warm across executions
		j.exp = j.ref.Def.AcquireState()
		j.emitPend = j.pendEmit
		j.emitBatch = j.batchEmit
	}
	j.base = j.exp.Stats()
	j.pruned = 0
	if j.left != nil {
		return j.left.Open(ec)
	}
	return nil
}

func (j *jsonTableOp) Close() error {
	j.flushStats()
	j.ref.Def.ReleaseState(j.exp)
	j.exp = nil
	putBatch(j.out)
	j.out = nil
	if j.left != nil {
		return j.left.Close()
	}
	return nil
}

// flushStats publishes this execution's expansion counters
// operator-locally (like sql.scan.rows) and keeps the deltas for
// EXPLAIN ANALYZE. Idempotent: a second Close adds zeros.
func (j *jsonTableOp) flushStats() {
	if j.exp == nil {
		return
	}
	s := j.exp.Stats()
	d := sqljson.ExpandStats{
		Docs:       s.Docs - j.base.Docs,
		Rows:       s.Rows - j.base.Rows,
		ParseReuse: s.ParseReuse - j.base.ParseReuse,
		ArenaGets:  s.ArenaGets - j.base.ArenaGets,
		ArenaHits:  s.ArenaHits - j.base.ArenaHits,
		InternHits: s.InternHits - j.base.InternHits,
	}
	j.base = s
	mJSONTableDocs.Add(d.Docs)
	mJSONTableRows.Add(d.Rows)
	mJSONTablePruned.Add(j.pruned)
	mJSONTableArenaHits.Add(d.ArenaHits)
	mJSONTableInternHits.Add(d.InternHits)
	if d.Docs != 0 || d.Rows != 0 || j.pruned != 0 {
		j.lastStats, j.lastPruned = d, j.pruned
	}
	j.pruned = 0
}

func (j *jsonTableOp) Schema() Schema { return j.sch }

func (j *jsonTableOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if j.st != nil {
		t0 := time.Now()
		defer func() { j.st.observe(time.Since(t0), ok) }()
	}
	return j.nextRow(ec)
}

// nextRow is the stats-free expansion loop shared by Next and the
// batch producer (NextBatch in exec_batch.go). Pending rows are fully
// merged and arena-carved, so consumers may retain them.
func (j *jsonTableOp) nextRow(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	for {
		// document expansion can reject every pending row of many
		// successive outer rows; stay cancellable across them
		if err := ec.tickErr(&j.ticks); err != nil {
			return nil, false, err
		}
		if j.pi < len(j.pending) {
			row := j.pending[j.pi]
			j.pi++
			return row, true, nil
		}
		if j.done {
			return nil, false, nil
		}
		if j.left == nil {
			j.done = true
			if err := j.expandPending(ec, nil); err != nil {
				return nil, false, err
			}
			continue
		}
		row, ok, err := j.left.Next(ec)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			continue
		}
		if err := j.expandPending(ec, row); err != nil {
			return nil, false, err
		}
	}
}

// expandPending expands the current outer row's document into
// j.pending, reusing the slice header across outer rows.
func (j *jsonTableOp) expandPending(ec *ExecCtx, leftRow []jsondom.Value) error {
	j.pending, j.pi = j.pending[:0], 0
	return j.expandDoc(ec, leftRow, j.emitPend)
}

// pendEmit merges one expansion row with the current outer row and
// queues it (the pre-bound emit target of expandPending).
func (j *jsonTableOp) pendEmit(scratch []jsondom.Value) error {
	j.pending = append(j.pending, j.mergeRow(scratch))
	return nil
}

// mergeRow carves left+expanded into the op's row arena. The scratch
// slice is ExpandState-owned and overwritten by the next row; the
// arena copy is what consumers may retain.
func (j *jsonTableOp) mergeRow(scratch []jsondom.Value) []jsondom.Value {
	lw := len(j.leftRow)
	row := j.arena.alloc(lw + len(scratch))
	copy(row, j.leftRow)
	copy(row[lw:], scratch)
	return row
}

// expandDoc evaluates the document argument against the current outer
// row, applies static and bind-time prefilters, and streams the merged
// JSON_TABLE rows to emit via the pooled ExpandState.
func (j *jsonTableOp) expandDoc(ec *ExecCtx, leftRow []jsondom.Value, emit func([]jsondom.Value) error) error {
	// one cancellation point per document, matching row-at-a-time
	// expansion granularity (a document expands in microseconds)
	if err := ec.Context().Err(); err != nil {
		return err
	}
	j.leftRow = leftRow
	j.argCtx.row = leftRow
	v, err := evalExpr(j.argCtx, j.ref.Arg)
	if err != nil {
		return err
	}
	if isNull(v) {
		return nil
	}
	if err := j.exp.Bind(v); err != nil {
		return err
	}
	for _, pf := range j.preFilters {
		ok, err := j.exp.Exists(pf)
		if err != nil {
			return err
		}
		if !ok {
			j.pruned++
			return nil // the residual WHERE would reject every row
		}
	}
	for _, pf := range j.runFilters {
		ok, err := j.exp.Exists(pf)
		if err != nil {
			return err
		}
		if !ok {
			j.pruned++
			return nil
		}
	}
	return j.exp.Expand(emit)
}

func (j *jsonTableOp) opName() string {
	name := fmt.Sprintf("JSONTable(%s", j.ref.Alias)
	if len(j.preFilters) > 0 {
		name += fmt.Sprintf(" prefilters=%d", len(j.preFilters))
	}
	if len(j.preSpecs) > 0 {
		name += fmt.Sprintf(" dyn-prefilters=%d", len(j.preSpecs))
	}
	return name + ")"
}
func (j *jsonTableOp) opChildren() []rowSource {
	if j.left == nil {
		return nil
	}
	return []rowSource{j.left}
}
func (j *jsonTableOp) opStat() *OpStats { return j.st }

// opExtraLines reports the expansion accounting of the last execution
// for EXPLAIN ANALYZE: documents expanded, rows emitted, documents
// pruned by prefilters, and how much evaluation scratch was served
// from the arena freelists.
func (j *jsonTableOp) opExtraLines() []string {
	d := j.lastStats
	if d.Docs == 0 && d.Rows == 0 && j.lastPruned == 0 {
		return nil
	}
	return []string{fmt.Sprintf(
		"expand: docs=%d rows=%d pruned=%d arena-reuse=%d/%d parse-reuse=%d intern-hits=%d",
		d.Docs, d.Rows, j.lastPruned, d.ArenaHits, d.ArenaGets, d.ParseReuse, d.InternHits)}
}

// ---------------------------------------------------------------------------
// joins

// crossJoin is a nested-loop cross product with the right side
// materialized.
type crossJoin struct {
	planEstimate
	left, right rowSource
	sch         Schema

	rightRows [][]jsondom.Value
	leftRow   []jsondom.Value
	ri        int
	init      bool
	ticks     int
	memUsed   int64
	ec        *ExecCtx
	st        *OpStats
}

func newCrossJoin(l, r rowSource) *crossJoin {
	return &crossJoin{left: l, right: r,
		sch: append(append(Schema{}, l.Schema()...), r.Schema()...)}
}

func (c *crossJoin) Open(ec *ExecCtx) error {
	c.st = ec.statFor()
	c.ec = ec
	c.init, c.ri, c.leftRow, c.rightRows = false, 0, nil, nil
	if err := c.left.Open(ec); err != nil {
		return err
	}
	return c.right.Open(ec)
}

func (c *crossJoin) Close() error {
	c.ec.release(c.memUsed)
	c.memUsed = 0
	if err := c.left.Close(); err != nil {
		return err
	}
	return c.right.Close()
}

func (c *crossJoin) Schema() Schema { return c.sch }

func (c *crossJoin) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if c.st != nil {
		t0 := time.Now()
		defer func() { c.st.observe(time.Since(t0), ok) }()
	}
	if !c.init {
		c.init = true
		for {
			if err := ec.tickErr(&c.ticks); err != nil {
				return nil, false, err
			}
			row, ok, err := c.right.Next(ec)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			n := rowBytes(row)
			if err := ec.grow(n); err != nil {
				return nil, false, err
			}
			c.memUsed += n
			c.rightRows = append(c.rightRows, row)
		}
	}
	for {
		if err := ec.tickErr(&c.ticks); err != nil {
			return nil, false, err
		}
		if c.leftRow == nil {
			row, ok, err := c.left.Next(ec)
			if err != nil || !ok {
				return nil, false, err
			}
			c.leftRow = row
			c.ri = 0
		}
		if c.ri >= len(c.rightRows) {
			c.leftRow = nil
			continue
		}
		r := c.rightRows[c.ri]
		c.ri++
		out := make([]jsondom.Value, 0, len(c.leftRow)+len(r))
		out = append(out, c.leftRow...)
		out = append(out, r...)
		return out, true, nil
	}
}

func (c *crossJoin) opName() string          { return "CrossJoin" }
func (c *crossJoin) opChildren() []rowSource { return []rowSource{c.left, c.right} }
func (c *crossJoin) opStat() *OpStats        { return c.st }

// hashJoin is an equi-join: build on the right input, probe with the
// left (the plan the REL storage of §6.3 uses to join master and
// detail).
type hashJoin struct {
	planEstimate
	left, right         rowSource
	leftKeys, rightKeys []Expr
	residual            Expr
	leftOuter           bool
	env                 *planEnv
	sch                 Schema

	table   map[string][][]jsondom.Value
	leftRow []jsondom.Value
	matches [][]jsondom.Value
	mi      int
	init    bool
	ticks   int
	memUsed int64
	ec      *ExecCtx
	st      *OpStats

	leftCtx, rightCtx, residCtx *evalCtx

	// batch enables batch-at-a-time build/probe pulls and, when both
	// inputs qualify, the code-space fast path (fast != nil after init).
	batch    bool
	fast     *joinFast
	leftNext rowNextFunc
	arena    rowArena
	// keyBuf is the keyOf scratch for the serial build and probe
	// loops; parallel probe workers carry their own (parexec.go).
	keyBuf []byte

	// buildLeft is the cost-based planner's build-side choice: when the
	// LEFT input is estimated smaller, the hash table is built on it and
	// the right side streams past once. Emission stays left-major with
	// right rows in scan order — bit-for-bit the generic build-right
	// output — so the differential corpus holds (see buildLeftSide).
	buildLeft bool

	// parExec enables the morsel-driven parallel probe (parexec.go):
	// the build side is constructed once into a read-only shared table
	// and probe partitions are joined in place by workers. Plan-time
	// flags, copied by clonePlan.
	parExec   bool
	parDegree int
	pj        *parProbe
	// fastTable/fastLCol are the shared code-space build table and the
	// probe-side key column when the parallel fast probe qualifies.
	fastTable map[uint64][][]jsondom.Value
	fastLCol  *ColRef
	// leftOpen tracks whether h.left was actually opened: a parallel
	// probe candidate defers it, because opening a parallelScanOp
	// spawns scan workers the partition fan-out would never drain.
	leftOpen bool

	// build-left execution state: the materialized left rows in scan
	// order, and per left row the matching right rows in right-scan
	// order (residual already applied at probe time). blHadKey marks
	// left rows whose key matched at least one right row before the
	// residual: like the build-right loop, the left-outer pad fires
	// only on key misses, not on residual rejections.
	blLeft     [][]jsondom.Value
	blMatches  [][][]jsondom.Value
	blHadKey   []bool
	blActive   bool
	blPadded   bool
	blLi, blMi int
}

func newHashJoin(l, r rowSource, lk, rk []Expr, residual Expr, leftOuter bool, env *planEnv) *hashJoin {
	return &hashJoin{
		left: l, right: r, leftKeys: lk, rightKeys: rk,
		residual: residual, leftOuter: leftOuter, env: env,
		sch: append(append(Schema{}, l.Schema()...), r.Schema()...),
	}
}

func (h *hashJoin) Open(ec *ExecCtx) error {
	h.st = ec.statFor()
	h.ec = ec
	h.init, h.table, h.leftRow, h.matches, h.mi = false, nil, nil, nil, 0
	h.fast = nil
	h.leftNext = nil
	h.pj, h.fastTable, h.fastLCol = nil, nil, nil
	h.blLeft, h.blMatches, h.blHadKey, h.blActive, h.blPadded, h.blLi, h.blMi = nil, nil, nil, false, false, 0, 0
	h.leftCtx = h.env.bindCtx(h.left.Schema(), h.leftKeys...)
	h.rightCtx = h.env.bindCtx(h.right.Schema(), h.rightKeys...)
	if h.residual != nil {
		h.residCtx = h.env.bindCtx(h.sch, h.residual)
	}
	h.leftOpen = !(h.parExec && !h.buildLeft && findParPipe(h.left, h.parDegree) != nil)
	if h.leftOpen {
		if err := h.left.Open(ec); err != nil {
			return err
		}
	}
	return h.right.Open(ec)
}

func (h *hashJoin) Close() error {
	if h.pj != nil {
		// joins the probe workers before anything else is torn down;
		// kept (not nilled) so EXPLAIN ANALYZE can read its counters
		h.pj.close()
	}
	h.ec.release(h.memUsed)
	h.memUsed = 0
	if h.leftOpen {
		if err := h.left.Close(); err != nil {
			return err
		}
	}
	return h.right.Close()
}

func (h *hashJoin) Schema() Schema { return h.sch }

// keyOf renders the canonical join key for row into buf (a scratch
// buffer the caller reuses across rows; the returned slice is its next
// incarnation). ok is false when a key expression is NULL — NULL keys
// never match — and the returned key is then empty.
func (h *hashJoin) keyOf(ctx *evalCtx, buf []byte, row []jsondom.Value, keys []Expr) (key []byte, ok bool, err error) {
	ctx.row = row
	buf = buf[:0]
	for _, e := range keys {
		v, err := evalExpr(ctx, e)
		if err != nil {
			return buf, false, err
		}
		if isNull(v) {
			return buf, false, nil
		}
		buf = keyRenderAppend(buf, v)
	}
	return buf, true, nil
}

func (h *hashJoin) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if h.st != nil {
		t0 := time.Now()
		defer func() { h.st.observe(time.Since(t0), ok) }()
	}
	if !h.init {
		h.init = true
		if !h.leftOpen {
			started, err := h.startParProbe(ec)
			if err != nil {
				return nil, false, err
			}
			if !started {
				// the fan-out declined at execution time: open the
				// left input and run the serial paths
				mParExecFallbacks.Inc()
				h.leftOpen = true
				if err := h.left.Open(ec); err != nil {
					return nil, false, err
				}
			}
		}
		if h.pj == nil && h.batch {
			if jf := newJoinFast(h); jf != nil {
				h.fast = jf
				if err := jf.build(ec); err != nil {
					return nil, false, err
				}
			}
		}
		if h.pj == nil && h.fast == nil {
			if h.buildLeft {
				if err := h.buildLeftSide(ec); err != nil {
					return nil, false, err
				}
			} else if err := h.buildGeneric(ec); err != nil {
				return nil, false, err
			}
		}
	}
	if h.pj != nil {
		return h.pj.next(ec)
	}
	if h.fast != nil {
		return h.fast.next(ec)
	}
	if h.blActive {
		return h.nextBuildLeft(ec)
	}
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return nil, false, err
		}
		if h.mi < len(h.matches) {
			r := h.matches[h.mi]
			h.mi++
			out := make([]jsondom.Value, 0, len(h.leftRow)+len(r))
			out = append(out, h.leftRow...)
			out = append(out, r...)
			if h.residual != nil {
				h.residCtx.row = out
				v, err := evalExpr(h.residCtx, h.residual)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := h.leftNext(ec)
		if err != nil || !ok {
			return nil, false, err
		}
		h.leftRow = row
		k, kok, err := h.keyOf(h.leftCtx, h.keyBuf, row, h.leftKeys)
		h.keyBuf = k
		if err != nil {
			return nil, false, err
		}
		h.matches = nil
		if kok {
			h.matches = h.table[string(k)]
		}
		h.mi = 0
		if len(h.matches) == 0 && h.leftOuter {
			out := make([]jsondom.Value, 0, len(row)+len(h.right.Schema()))
			out = append(out, row...)
			for range h.right.Schema() {
				out = append(out, null)
			}
			return out, true, nil
		}
	}
}

// buildGeneric materializes the right input into the rendered-key hash
// table, pulling in batches when the input supports it.
func (h *hashJoin) buildGeneric(ec *ExecCtx) error {
	h.leftNext = batchNextFunc(h.left, h.batch)
	rightNext := batchNextFunc(h.right, h.batch)
	h.table = make(map[string][][]jsondom.Value)
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return err
		}
		row, ok, err := rightNext(ec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k, kok, err := h.keyOf(h.rightCtx, h.keyBuf, row, h.rightKeys)
		h.keyBuf = k
		if err != nil {
			return err
		}
		if !kok {
			continue
		}
		ks := string(k)
		n := rowBytes(row) + int64(len(ks))
		if err := ec.grow(n); err != nil {
			return err
		}
		h.memUsed += n
		h.table[ks] = append(h.table[ks], row)
	}
}

// buildLeftSide materializes the LEFT input and hashes its keys, then
// streams the right input once, attaching each right row (after the
// residual check on the concatenated pair) to every matching left row.
// Left rows keep scan order and right matches append in right-scan
// order, so nextBuildLeft emits exactly the sequence the build-right
// probe loop would: left-major, right-scan order within a left row.
func (h *hashJoin) buildLeftSide(ec *ExecCtx) error {
	h.blActive = true
	leftNext := batchNextFunc(h.left, h.batch)
	rightNext := batchNextFunc(h.right, h.batch)
	byKey := make(map[string][]int)
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return err
		}
		row, ok, err := leftNext(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k, kok, err := h.keyOf(h.leftCtx, h.keyBuf, row, h.leftKeys)
		h.keyBuf = k
		if err != nil {
			return err
		}
		n := rowBytes(row) + int64(len(k))
		if err := ec.grow(n); err != nil {
			return err
		}
		h.memUsed += n
		li := len(h.blLeft)
		h.blLeft = append(h.blLeft, row)
		if kok { // NULL keys never match
			ks := string(k)
			byKey[ks] = append(byKey[ks], li)
		}
	}
	h.blMatches = make([][][]jsondom.Value, len(h.blLeft))
	h.blHadKey = make([]bool, len(h.blLeft))
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return err
		}
		row, ok, err := rightNext(ec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k, kok, err := h.keyOf(h.rightCtx, h.keyBuf, row, h.rightKeys)
		h.keyBuf = k
		if err != nil {
			return err
		}
		if !kok {
			continue
		}
		charged := false
		for _, li := range byKey[string(k)] {
			h.blHadKey[li] = true
			if h.residual != nil {
				pair := make([]jsondom.Value, 0, len(h.blLeft[li])+len(row))
				pair = append(pair, h.blLeft[li]...)
				pair = append(pair, row...)
				h.residCtx.row = pair
				v, err := evalExpr(h.residCtx, h.residual)
				if err != nil {
					return err
				}
				if !truthy(v) {
					continue
				}
			}
			if !charged {
				// the row slice is shared across its left matches;
				// charge it once
				n := rowBytes(row)
				if err := ec.grow(n); err != nil {
					return err
				}
				h.memUsed += n
				charged = true
			}
			h.blMatches[li] = append(h.blMatches[li], row)
		}
	}
}

// nextBuildLeft emits the build-left join output: left rows in scan
// order, each concatenated with its matches in right-scan order, with
// the left-outer NULL pad when a left row matched nothing.
func (h *hashJoin) nextBuildLeft(ec *ExecCtx) ([]jsondom.Value, bool, error) {
	for {
		if err := ec.tickErr(&h.ticks); err != nil {
			return nil, false, err
		}
		if h.blLi >= len(h.blLeft) {
			return nil, false, nil
		}
		lrow := h.blLeft[h.blLi]
		ms := h.blMatches[h.blLi]
		if h.blMi < len(ms) {
			r := ms[h.blMi]
			h.blMi++
			out := make([]jsondom.Value, 0, len(lrow)+len(r))
			out = append(out, lrow...)
			out = append(out, r...)
			return out, true, nil
		}
		if len(ms) == 0 && h.leftOuter && !h.blHadKey[h.blLi] && !h.blPadded {
			h.blPadded = true
			out := make([]jsondom.Value, 0, len(lrow)+len(h.right.Schema()))
			out = append(out, lrow...)
			for range h.right.Schema() {
				out = append(out, null)
			}
			return out, true, nil
		}
		h.blLi++
		h.blMi = 0
		h.blPadded = false
	}
}

func (h *hashJoin) opName() string {
	name := "HashJoin"
	if h.leftOuter {
		name = "HashJoin(left-outer)"
	}
	if h.buildLeft {
		name += " build=left"
	}
	return name
}
func (h *hashJoin) opChildren() []rowSource { return []rowSource{h.left, h.right} }
func (h *hashJoin) opStat() *OpStats        { return h.st }

// opExtraLines reports the code-space probe statistics when the fast
// path ran and the parallel probe's per-worker aggregate when the
// partition fan-out ran (safe after Close: the workers are joined).
func (h *hashJoin) opExtraLines() []string {
	var lines []string
	if h.fast != nil {
		lines = append(lines, h.fast.stat())
	}
	if h.pj != nil {
		probed, hits := h.pj.totals()
		lines = append(lines, fmt.Sprintf("par-probe: mode=%s workers=%d probe-rows=%d hits=%d stalls=%d",
			h.pj.mode, h.pj.workers, probed, hits, h.pj.stalls))
	}
	return lines
}

// ---------------------------------------------------------------------------
// grouping and aggregation

// groupAggOp hashes input rows into groups and emits one row per
// group: a representative input row extended with one synthetic
// column per aggregate (positions recorded in planEnv.aggCols).
type groupAggOp struct {
	planEstimate
	in      rowSource
	groupBy []Expr
	aggs    []*FuncCall
	env     *planEnv
	// implicitGroup: aggregate query without GROUP BY — one group over
	// the whole input, emitted even when the input is empty.
	implicitGroup bool
	sch           Schema

	groups  [][]jsondom.Value
	gi      int
	opened  bool
	ticks   int
	memUsed int64
	ec      *ExecCtx
	st      *OpStats

	// batch enables batch-at-a-time input pulls and the code-space fast
	// path; fastStat is its EXPLAIN ANALYZE line when it ran.
	batch    bool
	fastStat string

	// parExec enables the morsel-driven parallel build (parexec.go):
	// partition workers accumulate private partial-aggregate tables
	// that a single-pass merge combines. Plan-time flags, copied by
	// clonePlan; parStat is the EXPLAIN ANALYZE line when it ran.
	parExec   bool
	parDegree int
	parStat   string
	// inOpen tracks whether g.in was actually opened: a parallel-exec
	// candidate defers it, because opening a parallelScanOp spawns scan
	// workers the partition fan-out would then never drain.
	inOpen bool
}

func newGroupAggOp(in rowSource, groupBy []Expr, aggs []*FuncCall, implicit bool, env *planEnv) *groupAggOp {
	g := &groupAggOp{in: in, groupBy: groupBy, aggs: aggs, implicitGroup: implicit, env: env}
	g.sch = append(Schema{}, in.Schema()...)
	for i, a := range g.aggs {
		env.aggCols[a] = len(g.sch)
		g.sch = append(g.sch, ColMeta{Name: fmt.Sprintf("$agg%d", i), Hidden: true})
	}
	return g
}

func (g *groupAggOp) Open(ec *ExecCtx) error {
	g.st = ec.statFor()
	g.ec = ec
	g.groups, g.gi, g.opened = nil, 0, false
	g.fastStat, g.parStat = "", ""
	g.inOpen = !(g.parExec && findParPipe(g.in, g.parDegree) != nil)
	if !g.inOpen {
		return nil
	}
	return g.in.Open(ec)
}

func (g *groupAggOp) Close() error {
	g.ec.release(g.memUsed)
	g.memUsed = 0
	if !g.inOpen {
		return nil
	}
	return g.in.Close()
}
func (g *groupAggOp) Schema() Schema { return g.sch }

type groupState struct {
	repr   []jsondom.Value
	states []aggState
}

type aggState interface {
	add(v jsondom.Value)
	result() jsondom.Value
}

func (g *groupAggOp) build(ec *ExecCtx) error {
	if !g.inOpen {
		ok, err := g.buildParallel(ec)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// the fan-out declined at execution time (partition split
		// degenerated): open the input and run the serial paths
		mParExecFallbacks.Inc()
		g.inOpen = true
		if err := g.in.Open(ec); err != nil {
			return err
		}
	}
	if g.batch {
		// code-space aggregation when the plan shape qualifies; falls
		// through to the generic build (over batches) otherwise
		if ok, err := g.buildFast(ec); ok || err != nil {
			return err
		}
	}
	next := batchNextFunc(g.in, g.batch)
	index := make(map[string]*groupState)
	var order []string
	inSch := g.in.Schema()
	bindExprs := append([]Expr{}, g.groupBy...)
	for _, a := range g.aggs {
		bindExprs = append(bindExprs, a.Args...)
	}
	ctx := g.env.bindCtx(inSch, bindExprs...)
	var keyBuf []byte // per-row rendered key, allocated only on new groups
	for {
		if err := ec.tickErr(&g.ticks); err != nil {
			return err
		}
		row, ok, err := next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.row = row
		keyBuf = keyBuf[:0]
		for _, e := range g.groupBy {
			v, err := evalExpr(ctx, e)
			if err != nil {
				return err
			}
			keyBuf = keyRenderAppend(keyBuf, v)
		}
		gs, ok := index[string(keyBuf)] // alloc-free lookup
		if !ok {
			key := string(keyBuf)
			gs = &groupState{repr: row, states: g.newStates()}
			index[key] = gs
			order = append(order, key)
			// only the per-group representative row is retained; the
			// aggregate states are O(1) per group
			n := rowBytes(row) + int64(len(key))
			if err := ec.grow(n); err != nil {
				return err
			}
			g.memUsed += n
		}
		for i, agg := range g.aggs {
			var arg jsondom.Value = null
			if len(agg.Args) > 0 {
				v, err := evalExpr(ctx, agg.Args[0])
				if err != nil {
					return err
				}
				arg = v
			}
			gs.states[i].add(arg)
		}
	}
	if len(order) == 0 && g.implicitGroup {
		gs := &groupState{repr: make([]jsondom.Value, len(inSch)), states: g.newStates()}
		for i := range gs.repr {
			gs.repr[i] = null
		}
		index[""] = gs
		order = append(order, "")
	}
	for _, k := range order {
		gs := index[k]
		out := make([]jsondom.Value, 0, len(gs.repr)+len(g.aggs))
		out = append(out, gs.repr...)
		for _, st := range gs.states {
			out = append(out, st.result())
		}
		g.groups = append(g.groups, out)
	}
	return nil
}

func (g *groupAggOp) newStates() []aggState {
	states := make([]aggState, len(g.aggs))
	for i, a := range g.aggs {
		switch a.Name {
		case "count":
			states[i] = &countState{star: a.Star}
		case "sum":
			states[i] = &sumState{}
		case "avg":
			states[i] = &avgState{}
		case "min":
			states[i] = &minMaxState{min: true}
		case "max":
			states[i] = &minMaxState{}
		case "json_dataguideagg":
			states[i] = &dataGuideState{guide: dataguide.New()}
		}
	}
	return states
}

func (g *groupAggOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if g.st != nil {
		t0 := time.Now()
		defer func() { g.st.observe(time.Since(t0), ok) }()
	}
	if !g.opened {
		g.opened = true
		if err := g.build(ec); err != nil {
			return nil, false, err
		}
	}
	if g.gi >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.gi]
	g.gi++
	return row, true, nil
}

func (g *groupAggOp) opName() string {
	return fmt.Sprintf("GroupAgg(keys=%d aggs=%d)", len(g.groupBy), len(g.aggs))
}
func (g *groupAggOp) opChildren() []rowSource { return []rowSource{g.in} }
func (g *groupAggOp) opStat() *OpStats        { return g.st }

// opExtraLines reports the code-space aggregation statistics when the
// fast path ran and the parallel-build statistics when the partition
// fan-out ran.
func (g *groupAggOp) opExtraLines() []string {
	var lines []string
	if g.fastStat != "" {
		lines = append(lines, g.fastStat)
	}
	if g.parStat != "" {
		lines = append(lines, g.parStat)
	}
	return lines
}

type countState struct {
	star bool
	n    int64
}

func (s *countState) add(v jsondom.Value) {
	if s.star || !isNull(v) {
		s.n++
	}
}
func (s *countState) result() jsondom.Value { return jsondom.NumberFromInt(s.n) }

type sumState struct {
	sum   float64
	valid bool
}

func (s *sumState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if f, ok := numOf(v); ok {
		s.sum += f
		s.valid = true
	}
}

func (s *sumState) result() jsondom.Value {
	if !s.valid {
		return null
	}
	return jsondom.NumberFromFloat(s.sum)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if f, ok := numOf(v); ok {
		s.sum += f
		s.n++
	}
}

func (s *avgState) result() jsondom.Value {
	if s.n == 0 {
		return null
	}
	return jsondom.NumberFromFloat(s.sum / float64(s.n))
}

type minMaxState struct {
	min  bool
	best jsondom.Value
}

func (s *minMaxState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if s.best == nil {
		s.best = v
		return
	}
	cmp, ok := compareSQL(v, s.best)
	if !ok {
		return
	}
	if s.min && cmp < 0 || !s.min && cmp > 0 {
		s.best = v
	}
}

func (s *minMaxState) result() jsondom.Value {
	if s.best == nil {
		return null
	}
	return s.best
}

// dataGuideState implements JSON_DATAGUIDEAGG (§3.4): a user-defined
// aggregate that merges instance DataGuides and returns the flat form
// as one JSON document.
type dataGuideState struct {
	guide *dataguide.Guide
	err   error
}

func (s *dataGuideState) add(v jsondom.Value) {
	if isNull(v) || s.err != nil {
		return
	}
	doc, err := sqljson.FromDatum(v)
	if err != nil {
		s.err = err
		return
	}
	dom, err := doc.DOM()
	if err != nil {
		s.err = err
		return
	}
	s.guide.Add(dom)
}

func (s *dataGuideState) result() jsondom.Value {
	return jsondom.String(s.guide.FlatJSON())
}

// ---------------------------------------------------------------------------
// window functions

// windowOp materializes its input, computes window function values and
// appends them as synthetic columns (positions recorded in
// planEnv.winCols). LAG/LEAD/ROW_NUMBER with OVER (ORDER BY ...) are
// supported; Q6 of Table 13 needs LAG.
type windowOp struct {
	planEstimate
	in    rowSource
	funcs []*WindowFunc
	env   *planEnv
	sch   Schema

	rows    [][]jsondom.Value
	pos     int
	opened  bool
	ticks   int
	memUsed int64
	ec      *ExecCtx
	st      *OpStats
	// batch enables batch-at-a-time materialization of the input.
	batch bool
}

func newWindowOp(in rowSource, funcs []*WindowFunc, env *planEnv) *windowOp {
	w := &windowOp{in: in, funcs: funcs, env: env}
	w.sch = append(Schema{}, in.Schema()...)
	for i, f := range funcs {
		env.winCols[f] = len(w.sch)
		w.sch = append(w.sch, ColMeta{Name: fmt.Sprintf("$win%d", i), Hidden: true})
	}
	return w
}

func (w *windowOp) Open(ec *ExecCtx) error {
	w.st = ec.statFor()
	w.ec = ec
	w.rows, w.pos, w.opened = nil, 0, false
	return w.in.Open(ec)
}

func (w *windowOp) Close() error {
	w.ec.release(w.memUsed)
	w.memUsed = 0
	return w.in.Close()
}
func (w *windowOp) Schema() Schema { return w.sch }

func (w *windowOp) build(ec *ExecCtx) error {
	inSch := w.in.Schema()
	next := batchNextFunc(w.in, w.batch)
	var base [][]jsondom.Value
	for {
		if err := ec.tickErr(&w.ticks); err != nil {
			return err
		}
		row, ok, err := next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n := rowBytes(row)
		if err := ec.grow(n); err != nil {
			return err
		}
		w.memUsed += n
		base = append(base, row)
	}
	ext := make([][]jsondom.Value, len(base))
	for i, row := range base {
		ext[i] = make([]jsondom.Value, len(w.sch))
		copy(ext[i], row)
		for j := len(row); j < len(w.sch); j++ {
			ext[i][j] = null
		}
	}
	for fi, f := range w.funcs {
		order, err := sortedIndexes(base, inSch, w.env, f.OrderBy)
		if err != nil {
			return err
		}
		col := len(inSch) + fi
		for rank, rowIdx := range order {
			ctx := w.env.ctx(inSch, base[rowIdx])
			switch f.Name {
			case "row_number":
				ext[rowIdx][col] = jsondom.NumberFromInt(int64(rank + 1))
			case "lag", "lead":
				offset := 1
				if len(f.Args) >= 2 {
					ov, err := evalExpr(ctx, f.Args[1])
					if err != nil {
						return err
					}
					if of, ok := numOf(ov); ok {
						offset = int(of)
					}
				}
				srcRank := rank - offset
				if f.Name == "lead" {
					srcRank = rank + offset
				}
				switch {
				case srcRank >= 0 && srcRank < len(order):
					v, err := evalExpr(w.env.ctx(inSch, base[order[srcRank]]), f.Args[0])
					if err != nil {
						return err
					}
					ext[rowIdx][col] = v
				case len(f.Args) >= 3:
					v, err := evalExpr(ctx, f.Args[2])
					if err != nil {
						return err
					}
					ext[rowIdx][col] = v
				}
			default:
				return fmt.Errorf("sql: unsupported window function %q", f.Name)
			}
		}
	}
	w.rows = ext
	return nil
}

func (w *windowOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if w.st != nil {
		t0 := time.Now()
		defer func() { w.st.observe(time.Since(t0), ok) }()
	}
	if !w.opened {
		w.opened = true
		if err := w.build(ec); err != nil {
			return nil, false, err
		}
	}
	if w.pos >= len(w.rows) {
		return nil, false, nil
	}
	row := w.rows[w.pos]
	w.pos++
	return row, true, nil
}

func (w *windowOp) opName() string          { return fmt.Sprintf("Window(funcs=%d)", len(w.funcs)) }
func (w *windowOp) opChildren() []rowSource { return []rowSource{w.in} }
func (w *windowOp) opStat() *OpStats        { return w.st }

// ---------------------------------------------------------------------------
// sorting

// sortOp materializes and orders its input. Key expressions are
// evaluated against the input schema; positional items (ORDER BY 1)
// are resolved by the planner into expressions before reaching here.
type sortOp struct {
	planEstimate
	in    rowSource
	items []OrderItem
	env   *planEnv

	rows   [][]jsondom.Value
	pos    int
	opened bool
	// inClosed: the input is closed as soon as materialization is
	// complete — it has no more rows to give, and closing it early
	// stops any parallel scan workers still queued behind it.
	inClosed bool
	ticks    int
	memUsed  int64
	ec       *ExecCtx
	st       *OpStats
	// batch enables batch-at-a-time materialization of the input.
	batch bool

	// parExec enables the morsel-driven parallel sort (parexec.go):
	// partition workers build sorted runs that Next k-way merges.
	// Plan-time flags, copied by clonePlan; parStat is the EXPLAIN
	// ANALYZE line when it ran.
	parExec   bool
	parDegree int
	runs      []parSortRun
	parStat   string
	// inOpen tracks whether s.in was actually opened: a parallel-exec
	// candidate defers it, because opening a parallelScanOp spawns
	// scan workers the partition fan-out would never drain.
	inOpen bool
}

func (s *sortOp) Open(ec *ExecCtx) error {
	s.st = ec.statFor()
	s.ec = ec
	s.rows, s.pos, s.opened, s.inClosed = nil, 0, false, false
	s.runs, s.parStat = nil, ""
	s.inOpen = !(s.parExec && findParPipe(s.in, s.parDegree) != nil)
	if !s.inOpen {
		return nil
	}
	return s.in.Open(ec)
}

func (s *sortOp) Close() error {
	s.ec.release(s.memUsed)
	s.memUsed = 0
	if !s.inOpen || s.inClosed {
		return nil
	}
	s.inClosed = true
	return s.in.Close()
}

func (s *sortOp) Schema() Schema { return s.in.Schema() }

func (s *sortOp) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if s.st != nil {
		t0 := time.Now()
		defer func() { s.st.observe(time.Since(t0), ok) }()
	}
	if !s.opened {
		s.opened = true
		if !s.inOpen {
			built, err := s.buildParallel(ec)
			if err != nil {
				return nil, false, err
			}
			if !built {
				// the fan-out declined at execution time: open the
				// input and materialize serially
				mParExecFallbacks.Inc()
				s.inOpen = true
				if err := s.in.Open(ec); err != nil {
					return nil, false, err
				}
			}
		}
		if s.runs == nil {
			if err := s.buildSerial(ec); err != nil {
				return nil, false, err
			}
		}
	}
	if s.runs != nil {
		row, more := s.mergeNext()
		if !more {
			return nil, false, nil
		}
		return row, true, nil
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// buildSerial materializes and stable-sorts the whole input in one
// goroutine — the fallback when the partition fan-out is off or
// declined.
func (s *sortOp) buildSerial(ec *ExecCtx) error {
	next := batchNextFunc(s.in, s.batch)
	for {
		if err := ec.tickErr(&s.ticks); err != nil {
			return err
		}
		row, ok, err := next(ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n := rowBytes(row)
		if err := ec.grow(n); err != nil {
			return err
		}
		s.memUsed += n
		s.rows = append(s.rows, row)
	}
	// fully materialized: release the upstream immediately
	if !s.inClosed {
		s.inClosed = true
		if err := s.in.Close(); err != nil {
			return err
		}
	}
	inSch := s.in.Schema()
	var itemExprs []Expr
	for _, it := range s.items {
		itemExprs = append(itemExprs, it.Expr)
	}
	ctx := s.env.bindCtx(inSch, itemExprs...)
	keys := make([][]jsondom.Value, len(s.rows))
	for i, row := range s.rows {
		ctx.row = row
		keys[i] = make([]jsondom.Value, len(s.items))
		for k, it := range s.items {
			v, err := evalExpr(ctx, it.Expr)
			if err != nil {
				return err
			}
			keys[i][k] = v
		}
	}
	idx := make([]int, len(s.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sortKeyLess(s.items, keys[idx[a]], keys[idx[b]])
	})
	sorted := make([][]jsondom.Value, len(s.rows))
	for i, j := range idx {
		sorted[i] = s.rows[j]
	}
	s.rows = sorted
	return nil
}

func (s *sortOp) opName() string          { return fmt.Sprintf("Sort(keys=%d)", len(s.items)) }
func (s *sortOp) opChildren() []rowSource { return []rowSource{s.in} }
func (s *sortOp) opStat() *OpStats        { return s.st }

// opExtraLines reports the parallel sort's run statistics when the
// partition fan-out ran.
func (s *sortOp) opExtraLines() []string {
	if s.parStat == "" {
		return nil
	}
	return []string{s.parStat}
}

// sortedIndexes sorts row indexes by ORDER BY items evaluated against
// the rows; used by window functions.
func sortedIndexes(rows [][]jsondom.Value, sch Schema, env *planEnv, items []OrderItem) ([]int, error) {
	keys := make([][]jsondom.Value, len(rows))
	for i, row := range rows {
		keys[i] = make([]jsondom.Value, len(items))
		for k, it := range items {
			if it.Expr == nil {
				return nil, fmt.Errorf("sql: positional ORDER BY not supported in OVER clauses")
			}
			v, err := evalExpr(env.ctx(sch, row), it.Expr)
			if err != nil {
				return nil, err
			}
			keys[i][k] = v
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, it := range items {
			c := compareForSort(keys[idx[a]][k], keys[idx[b]][k])
			if it.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx, nil
}

// compareForSort orders values with NULLs last (the Oracle default for
// ascending order) and incomparable kinds by kind id for determinism.
func compareForSort(a, b jsondom.Value) int {
	an, bn := isNull(a), isNull(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	}
	if cmp, ok := compareSQL(a, b); ok {
		return cmp
	}
	ak, bk := a.Kind(), b.Kind()
	switch {
	case ak < bk:
		return -1
	case ak > bk:
		return 1
	}
	return 0
}

// keyRender produces a canonical grouping/join key for a value.
func keyRender(v jsondom.Value) string {
	if isNull(v) {
		return "\x00N"
	}
	switch t := v.(type) {
	case jsondom.String:
		return "s" + string(t)
	case jsondom.Bool:
		if t {
			return "bt"
		}
		return "bf"
	default:
		if f, ok := numOf(v); ok {
			// numeric normalization so 1 and 1.0 group together
			return "n" + string(jsondom.NumberFromFloat(f))
		}
		return "x"
	}
}

// keyRenderAppend appends keyRender's canonical form of v plus the
// NUL column separator to dst. Key builders render each row's key into
// a reused scratch buffer and look groups up with an alloc-free
// map[string(buf)] access, materializing the key string only when a
// new group or build row is inserted — the dominant per-row allocation
// of the rendered-key aggregation and join paths otherwise.
func keyRenderAppend(dst []byte, v jsondom.Value) []byte {
	if isNull(v) {
		dst = append(dst, "\x00N"...)
	} else {
		switch t := v.(type) {
		case jsondom.String:
			dst = append(dst, 's')
			dst = append(dst, t...)
		case jsondom.Bool:
			if t {
				dst = append(dst, "bt"...)
			} else {
				dst = append(dst, "bf"...)
			}
		default:
			if f, ok := numOf(v); ok {
				dst = append(dst, 'n')
				dst = jsondom.AppendFloat(dst, f)
			} else {
				dst = append(dst, 'x')
			}
		}
	}
	return append(dst, 0)
}

// aliasWrap renames the table qualifier of every column, exposing a
// subquery or view under its alias.
type aliasWrap struct {
	planEstimate
	in    rowSource
	alias string
	sch   Schema
	st    *OpStats
	// bin is the input's batch face; the wrap passes batches through
	// untouched (only the schema differs).
	bin batchSource
}

func newAliasWrap(in rowSource, alias string, names []string) *aliasWrap {
	w := &aliasWrap{in: in, alias: alias}
	inSch := in.Schema()
	for i := range inSch {
		name := inSch[i].Name
		if names != nil && i < len(names) {
			name = names[i]
		}
		w.sch = append(w.sch, ColMeta{Table: alias, Name: name})
	}
	return w
}

func (w *aliasWrap) Open(ec *ExecCtx) error {
	w.st = ec.statFor()
	w.bin = batchInput(w.in)
	return w.in.Open(ec)
}
func (w *aliasWrap) Close() error   { return w.in.Close() }
func (w *aliasWrap) Schema() Schema { return w.sch }
func (w *aliasWrap) Next(ec *ExecCtx) (out []jsondom.Value, ok bool, err error) {
	if w.st != nil {
		t0 := time.Now()
		defer func() { w.st.observe(time.Since(t0), ok) }()
	}
	return w.in.Next(ec)
}

func (w *aliasWrap) opName() string          { return fmt.Sprintf("Alias(%s)", w.alias) }
func (w *aliasWrap) opChildren() []rowSource { return []rowSource{w.in} }
func (w *aliasWrap) opStat() *OpStats        { return w.st }
