// Row-source executor: the Open/Next/Close iterator model of the row
// source API the paper cites for JSON_TABLE ([9], §5.1), used here for
// every operator.
//
// Aggregate and window function results flow through the pipeline as
// synthetic columns appended by groupAggOp/windowOp; expression
// evaluation resolves the originating AST nodes to those columns via
// the shared planEnv maps.

package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataguide"
	"repro/internal/jsondom"
	"repro/internal/pathengine"
	"repro/internal/sqljson"
	"repro/internal/store"
)

type rowSource interface {
	Open() error
	Next() ([]jsondom.Value, bool, error)
	Close() error
	Schema() Schema
}

// planEnv is shared by all operators of one plan: bind parameters plus
// the positions of aggregate/window results within the row.
type planEnv struct {
	params  []jsondom.Value
	aggCols map[*FuncCall]int
	winCols map[*WindowFunc]int
}

func (e *planEnv) ctx(sch Schema, row []jsondom.Value) *evalCtx {
	return &evalCtx{schema: sch, row: row, params: e.params,
		aggCols: e.aggCols, winCols: e.winCols}
}

// bindCtx prepares a reusable evaluation context for an operator: the
// column references of the given expressions are resolved against the
// schema once, so per-row evaluation is a pointer-keyed map hit.
func (e *planEnv) bindCtx(sch Schema, exprs ...Expr) *evalCtx {
	ctx := e.ctx(sch, nil)
	ctx.colIdx = make(map[*ColRef]int)
	for _, x := range exprs {
		bindCols(x, sch, ctx.colIdx)
	}
	return ctx
}

func bindCols(e Expr, sch Schema, m map[*ColRef]int) {
	for _, c := range exprColRefs(e) {
		if i, err := sch.Resolve(c.Table, c.Name); err == nil {
			m[c] = i
		}
	}
}

// InMemorySource substitutes column values during a scan, modeling the
// dual-format in-memory store of §5.2: OSON bytes in place of JSON
// text (OSON-IMC) and pre-computed virtual column vectors (VC-IMC).
type InMemorySource interface {
	// Substitute returns the in-memory value for (rowID, column), or
	// ok=false when the column is not populated in memory.
	Substitute(rowID int, col string) (jsondom.Value, bool)
}

// VectorFilterSource is an optional InMemorySource extension: it
// compiles simple comparison predicates over in-memory column vectors
// so the scan can skip non-matching rows before materializing them —
// the columnar predicate evaluation of §5.2.1.
type VectorFilterSource interface {
	InMemorySource
	// CompileFilter returns a per-row predicate for (col op operands),
	// ok=false when the column has no vector or the shape is
	// unsupported. op is one of = != < <= > >= between.
	CompileFilter(col, op string, operands []jsondom.Value) (func(rowID int) bool, bool)
}

// ---------------------------------------------------------------------------
// table scan

type tableScan struct {
	tab   *store.Table
	alias string
	sch   Schema
	// needVC marks virtual columns the query references; unreferenced
	// virtual columns are not computed (left NULL).
	needVC []bool
	cols   []store.Column
	sub    InMemorySource // IMC substitution, may be nil
	// vecFilters are compiled columnar predicates; rows failing any of
	// them are skipped before materialization (§5.2.1).
	vecFilters []func(rowID int) bool
	// rowIDs, when non-nil, restricts the scan to these row ids (an
	// index-driven scan from JSON search index postings).
	rowIDs []int
	idPos  int

	samplePct float64
	rng       *rand.Rand

	pos, maxID int
}

func newTableScan(tab *store.Table, alias string, needed map[string]bool, sub InMemorySource, samplePct float64) *tableScan {
	cols := tab.Columns()
	ts := &tableScan{tab: tab, alias: alias, cols: cols, sub: sub, samplePct: samplePct}
	for _, c := range cols {
		ts.sch = append(ts.sch, ColMeta{Table: alias, Name: c.Name, Hidden: c.Hidden})
		ts.needVC = append(ts.needVC, needed == nil || needed[c.Name])
	}
	return ts
}

func (s *tableScan) Open() error {
	s.pos = 0
	s.idPos = 0
	s.maxID = s.tab.MaxRowID()
	if s.samplePct > 0 {
		// deterministic sampling for reproducible experiments
		s.rng = rand.New(rand.NewSource(42))
	}
	return nil
}

func (s *tableScan) Schema() Schema { return s.sch }

func (s *tableScan) Next() ([]jsondom.Value, bool, error) {
	for {
		var rowID int
		var row store.Row
		if s.rowIDs != nil {
			if s.idPos >= len(s.rowIDs) {
				return nil, false, nil
			}
			rowID = s.rowIDs[s.idPos]
			s.idPos++
			var ok bool
			row, ok = s.tab.Get(rowID)
			if !ok {
				continue
			}
		} else {
			if s.pos >= s.maxID {
				return nil, false, nil
			}
			rowID = s.pos
			s.pos++
			var ok bool
			row, ok = s.tab.Get(rowID)
			if !ok {
				continue // deleted row
			}
		}
		if s.rng != nil && s.rng.Float64()*100 >= s.samplePct {
			continue
		}
		if !s.passVecFilters(rowID) {
			continue
		}
		out := make([]jsondom.Value, len(s.cols))
		for i, c := range s.cols {
			if s.sub != nil {
				if v, ok := s.sub.Substitute(rowID, c.Name); ok {
					out[i] = v
					continue
				}
			}
			if !c.Virtual {
				out[i] = row[i]
				continue
			}
			if !s.needVC[i] || c.Expr == nil {
				out[i] = null
				continue
			}
			v, err := c.Expr(row)
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		return out, true, nil
	}
}

func (s *tableScan) passVecFilters(rowID int) bool {
	for _, f := range s.vecFilters {
		if !f(rowID) {
			return false
		}
	}
	return true
}

func (s *tableScan) Close() error { return nil }

// ---------------------------------------------------------------------------
// filter / project / limit

type filterOp struct {
	in   rowSource
	pred Expr
	env  *planEnv
	ctx  *evalCtx
}

func (f *filterOp) Open() error {
	f.ctx = f.env.bindCtx(f.in.Schema(), f.pred)
	return f.in.Open()
}
func (f *filterOp) Close() error   { return f.in.Close() }
func (f *filterOp) Schema() Schema { return f.in.Schema() }

func (f *filterOp) Next() ([]jsondom.Value, bool, error) {
	for {
		row, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.ctx.row = row
		v, err := evalExpr(f.ctx, f.pred)
		if err != nil {
			return nil, false, err
		}
		if truthy(v) {
			return row, true, nil
		}
	}
}

type projectOp struct {
	in    rowSource
	exprs []Expr
	sch   Schema
	env   *planEnv
	ctx   *evalCtx
}

func (p *projectOp) Open() error {
	p.ctx = p.env.bindCtx(p.in.Schema(), p.exprs...)
	return p.in.Open()
}
func (p *projectOp) Close() error   { return p.in.Close() }
func (p *projectOp) Schema() Schema { return p.sch }

func (p *projectOp) Next() ([]jsondom.Value, bool, error) {
	row, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.row = row
	out := make([]jsondom.Value, len(p.exprs))
	for i, e := range p.exprs {
		v, err := evalExpr(p.ctx, e)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

type limitOp struct {
	in    rowSource
	limit int
	n     int
}

func (l *limitOp) Open() error    { l.n = 0; return l.in.Open() }
func (l *limitOp) Close() error   { return l.in.Close() }
func (l *limitOp) Schema() Schema { return l.in.Schema() }

func (l *limitOp) Next() ([]jsondom.Value, bool, error) {
	if l.n >= l.limit {
		return nil, false, nil
	}
	row, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return row, true, nil
}

// ---------------------------------------------------------------------------
// JSON_TABLE lateral apply

type jsonTableOp struct {
	left rowSource // may be nil when JSON_TABLE is the only FROM item
	ref  *JSONTableRef
	sch  Schema
	env  *planEnv

	leftRow []jsondom.Value
	pending [][]jsondom.Value
	pi      int
	done    bool
	argCtx  *evalCtx
	// preFilters are implied JSON_EXISTS path predicates; documents
	// failing any of them are skipped before row expansion (§6.3).
	preFilters []*pathengine.Compiled
}

func newJSONTableOp(left rowSource, ref *JSONTableRef, env *planEnv) *jsonTableOp {
	op := &jsonTableOp{left: left, ref: ref, env: env}
	if left != nil {
		op.sch = append(op.sch, left.Schema()...)
	}
	for _, name := range ref.ColNames {
		op.sch = append(op.sch, ColMeta{Table: ref.Alias, Name: name})
	}
	return op
}

func (j *jsonTableOp) Open() error {
	j.pending, j.pi, j.done = nil, 0, false
	j.leftRow = nil
	var sch Schema
	if j.left != nil {
		sch = j.left.Schema()
	}
	j.argCtx = j.env.bindCtx(sch, j.ref.Arg)
	if j.left != nil {
		return j.left.Open()
	}
	return nil
}

func (j *jsonTableOp) Close() error {
	if j.left != nil {
		return j.left.Close()
	}
	return nil
}

func (j *jsonTableOp) Schema() Schema { return j.sch }

func (j *jsonTableOp) Next() ([]jsondom.Value, bool, error) {
	for {
		if j.pi < len(j.pending) {
			jt := j.pending[j.pi]
			j.pi++
			if j.left == nil {
				return jt, true, nil
			}
			out := make([]jsondom.Value, 0, len(j.leftRow)+len(jt))
			out = append(out, j.leftRow...)
			out = append(out, jt...)
			return out, true, nil
		}
		if j.done {
			return nil, false, nil
		}
		if j.left == nil {
			j.done = true
			rows, err := j.expand(nil)
			if err != nil {
				return nil, false, err
			}
			j.pending, j.pi = rows, 0
			continue
		}
		row, ok, err := j.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			continue
		}
		j.leftRow = row
		rows, err := j.expand(row)
		if err != nil {
			return nil, false, err
		}
		j.pending, j.pi = rows, 0
	}
}

func (j *jsonTableOp) expand(leftRow []jsondom.Value) ([][]jsondom.Value, error) {
	j.argCtx.row = leftRow
	v, err := evalExpr(j.argCtx, j.ref.Arg)
	if err != nil {
		return nil, err
	}
	if isNull(v) {
		return nil, nil
	}
	doc, err := sqljson.FromDatum(v)
	if err != nil {
		return nil, err
	}
	for _, pf := range j.preFilters {
		ok, err := doc.Exists(pf)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // the residual WHERE would reject every row
		}
	}
	return j.ref.Def.Expand(doc)
}

// ---------------------------------------------------------------------------
// joins

// crossJoin is a nested-loop cross product with the right side
// materialized.
type crossJoin struct {
	left, right rowSource
	sch         Schema

	rightRows [][]jsondom.Value
	leftRow   []jsondom.Value
	ri        int
	init      bool
}

func newCrossJoin(l, r rowSource) *crossJoin {
	return &crossJoin{left: l, right: r,
		sch: append(append(Schema{}, l.Schema()...), r.Schema()...)}
}

func (c *crossJoin) Open() error {
	c.init, c.ri, c.leftRow, c.rightRows = false, 0, nil, nil
	if err := c.left.Open(); err != nil {
		return err
	}
	return c.right.Open()
}

func (c *crossJoin) Close() error {
	if err := c.left.Close(); err != nil {
		return err
	}
	return c.right.Close()
}

func (c *crossJoin) Schema() Schema { return c.sch }

func (c *crossJoin) Next() ([]jsondom.Value, bool, error) {
	if !c.init {
		c.init = true
		for {
			row, ok, err := c.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			c.rightRows = append(c.rightRows, row)
		}
	}
	for {
		if c.leftRow == nil {
			row, ok, err := c.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			c.leftRow = row
			c.ri = 0
		}
		if c.ri >= len(c.rightRows) {
			c.leftRow = nil
			continue
		}
		r := c.rightRows[c.ri]
		c.ri++
		out := make([]jsondom.Value, 0, len(c.leftRow)+len(r))
		out = append(out, c.leftRow...)
		out = append(out, r...)
		return out, true, nil
	}
}

// hashJoin is an equi-join: build on the right input, probe with the
// left (the plan the REL storage of §6.3 uses to join master and
// detail).
type hashJoin struct {
	left, right         rowSource
	leftKeys, rightKeys []Expr
	residual            Expr
	leftOuter           bool
	env                 *planEnv
	sch                 Schema

	table   map[string][][]jsondom.Value
	leftRow []jsondom.Value
	matches [][]jsondom.Value
	mi      int
	init    bool

	leftCtx, rightCtx, residCtx *evalCtx
}

func newHashJoin(l, r rowSource, lk, rk []Expr, residual Expr, leftOuter bool, env *planEnv) *hashJoin {
	return &hashJoin{
		left: l, right: r, leftKeys: lk, rightKeys: rk,
		residual: residual, leftOuter: leftOuter, env: env,
		sch: append(append(Schema{}, l.Schema()...), r.Schema()...),
	}
}

func (h *hashJoin) Open() error {
	h.init, h.table, h.leftRow, h.matches, h.mi = false, nil, nil, nil, 0
	h.leftCtx = h.env.bindCtx(h.left.Schema(), h.leftKeys...)
	h.rightCtx = h.env.bindCtx(h.right.Schema(), h.rightKeys...)
	if h.residual != nil {
		h.residCtx = h.env.bindCtx(h.sch, h.residual)
	}
	if err := h.left.Open(); err != nil {
		return err
	}
	return h.right.Open()
}

func (h *hashJoin) Close() error {
	if err := h.left.Close(); err != nil {
		return err
	}
	return h.right.Close()
}

func (h *hashJoin) Schema() Schema { return h.sch }

func (h *hashJoin) keyOf(ctx *evalCtx, row []jsondom.Value, keys []Expr) (string, error) {
	ctx.row = row
	k := ""
	for _, e := range keys {
		v, err := evalExpr(ctx, e)
		if err != nil {
			return "", err
		}
		if isNull(v) {
			return "", nil // NULL keys never match
		}
		k += keyRender(v) + "\x00"
	}
	return k, nil
}

func (h *hashJoin) Next() ([]jsondom.Value, bool, error) {
	if !h.init {
		h.init = true
		h.table = make(map[string][][]jsondom.Value)
		for {
			row, ok, err := h.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			k, err := h.keyOf(h.rightCtx, row, h.rightKeys)
			if err != nil {
				return nil, false, err
			}
			if k == "" {
				continue
			}
			h.table[k] = append(h.table[k], row)
		}
	}
	for {
		if h.mi < len(h.matches) {
			r := h.matches[h.mi]
			h.mi++
			out := make([]jsondom.Value, 0, len(h.leftRow)+len(r))
			out = append(out, h.leftRow...)
			out = append(out, r...)
			if h.residual != nil {
				h.residCtx.row = out
				v, err := evalExpr(h.residCtx, h.residual)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		h.leftRow = row
		k, err := h.keyOf(h.leftCtx, row, h.leftKeys)
		if err != nil {
			return nil, false, err
		}
		h.matches = nil
		if k != "" {
			h.matches = h.table[k]
		}
		h.mi = 0
		if len(h.matches) == 0 && h.leftOuter {
			out := make([]jsondom.Value, 0, len(row)+len(h.right.Schema()))
			out = append(out, row...)
			for range h.right.Schema() {
				out = append(out, null)
			}
			return out, true, nil
		}
	}
}

// ---------------------------------------------------------------------------
// grouping and aggregation

// groupAggOp hashes input rows into groups and emits one row per
// group: a representative input row extended with one synthetic
// column per aggregate (positions recorded in planEnv.aggCols).
type groupAggOp struct {
	in      rowSource
	groupBy []Expr
	aggs    []*FuncCall
	env     *planEnv
	// implicitGroup: aggregate query without GROUP BY — one group over
	// the whole input, emitted even when the input is empty.
	implicitGroup bool
	sch           Schema

	groups [][]jsondom.Value
	gi     int
	opened bool
}

func newGroupAggOp(in rowSource, groupBy []Expr, aggs []*FuncCall, implicit bool, env *planEnv) *groupAggOp {
	g := &groupAggOp{in: in, groupBy: groupBy, aggs: aggs, implicitGroup: implicit, env: env}
	g.sch = append(Schema{}, in.Schema()...)
	for i, a := range g.aggs {
		env.aggCols[a] = len(g.sch)
		g.sch = append(g.sch, ColMeta{Name: fmt.Sprintf("$agg%d", i), Hidden: true})
	}
	return g
}

func (g *groupAggOp) Open() error {
	g.groups, g.gi, g.opened = nil, 0, false
	return g.in.Open()
}

func (g *groupAggOp) Close() error   { return g.in.Close() }
func (g *groupAggOp) Schema() Schema { return g.sch }

type groupState struct {
	repr   []jsondom.Value
	states []aggState
}

type aggState interface {
	add(v jsondom.Value)
	result() jsondom.Value
}

func (g *groupAggOp) build() error {
	index := make(map[string]*groupState)
	var order []string
	inSch := g.in.Schema()
	bindExprs := append([]Expr{}, g.groupBy...)
	for _, a := range g.aggs {
		bindExprs = append(bindExprs, a.Args...)
	}
	ctx := g.env.bindCtx(inSch, bindExprs...)
	for {
		row, ok, err := g.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx.row = row
		key := ""
		for _, e := range g.groupBy {
			v, err := evalExpr(ctx, e)
			if err != nil {
				return err
			}
			key += keyRender(v) + "\x00"
		}
		gs, ok := index[key]
		if !ok {
			gs = &groupState{repr: row, states: g.newStates()}
			index[key] = gs
			order = append(order, key)
		}
		for i, agg := range g.aggs {
			var arg jsondom.Value = null
			if len(agg.Args) > 0 {
				v, err := evalExpr(ctx, agg.Args[0])
				if err != nil {
					return err
				}
				arg = v
			}
			gs.states[i].add(arg)
		}
	}
	if len(order) == 0 && g.implicitGroup {
		gs := &groupState{repr: make([]jsondom.Value, len(inSch)), states: g.newStates()}
		for i := range gs.repr {
			gs.repr[i] = null
		}
		index[""] = gs
		order = append(order, "")
	}
	for _, k := range order {
		gs := index[k]
		out := make([]jsondom.Value, 0, len(gs.repr)+len(g.aggs))
		out = append(out, gs.repr...)
		for _, st := range gs.states {
			out = append(out, st.result())
		}
		g.groups = append(g.groups, out)
	}
	return nil
}

func (g *groupAggOp) newStates() []aggState {
	states := make([]aggState, len(g.aggs))
	for i, a := range g.aggs {
		switch a.Name {
		case "count":
			states[i] = &countState{star: a.Star}
		case "sum":
			states[i] = &sumState{}
		case "avg":
			states[i] = &avgState{}
		case "min":
			states[i] = &minMaxState{min: true}
		case "max":
			states[i] = &minMaxState{}
		case "json_dataguideagg":
			states[i] = &dataGuideState{guide: dataguide.New()}
		}
	}
	return states
}

func (g *groupAggOp) Next() ([]jsondom.Value, bool, error) {
	if !g.opened {
		g.opened = true
		if err := g.build(); err != nil {
			return nil, false, err
		}
	}
	if g.gi >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.gi]
	g.gi++
	return row, true, nil
}

type countState struct {
	star bool
	n    int64
}

func (s *countState) add(v jsondom.Value) {
	if s.star || !isNull(v) {
		s.n++
	}
}
func (s *countState) result() jsondom.Value { return jsondom.NumberFromInt(s.n) }

type sumState struct {
	sum   float64
	valid bool
}

func (s *sumState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if f, ok := numOf(v); ok {
		s.sum += f
		s.valid = true
	}
}

func (s *sumState) result() jsondom.Value {
	if !s.valid {
		return null
	}
	return jsondom.NumberFromFloat(s.sum)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if f, ok := numOf(v); ok {
		s.sum += f
		s.n++
	}
}

func (s *avgState) result() jsondom.Value {
	if s.n == 0 {
		return null
	}
	return jsondom.NumberFromFloat(s.sum / float64(s.n))
}

type minMaxState struct {
	min  bool
	best jsondom.Value
}

func (s *minMaxState) add(v jsondom.Value) {
	if isNull(v) {
		return
	}
	if s.best == nil {
		s.best = v
		return
	}
	cmp, ok := compareSQL(v, s.best)
	if !ok {
		return
	}
	if s.min && cmp < 0 || !s.min && cmp > 0 {
		s.best = v
	}
}

func (s *minMaxState) result() jsondom.Value {
	if s.best == nil {
		return null
	}
	return s.best
}

// dataGuideState implements JSON_DATAGUIDEAGG (§3.4): a user-defined
// aggregate that merges instance DataGuides and returns the flat form
// as one JSON document.
type dataGuideState struct {
	guide *dataguide.Guide
	err   error
}

func (s *dataGuideState) add(v jsondom.Value) {
	if isNull(v) || s.err != nil {
		return
	}
	doc, err := sqljson.FromDatum(v)
	if err != nil {
		s.err = err
		return
	}
	dom, err := doc.DOM()
	if err != nil {
		s.err = err
		return
	}
	s.guide.Add(dom)
}

func (s *dataGuideState) result() jsondom.Value {
	return jsondom.String(s.guide.FlatJSON())
}

// ---------------------------------------------------------------------------
// window functions

// windowOp materializes its input, computes window function values and
// appends them as synthetic columns (positions recorded in
// planEnv.winCols). LAG/LEAD/ROW_NUMBER with OVER (ORDER BY ...) are
// supported; Q6 of Table 13 needs LAG.
type windowOp struct {
	in    rowSource
	funcs []*WindowFunc
	env   *planEnv
	sch   Schema

	rows   [][]jsondom.Value
	pos    int
	opened bool
}

func newWindowOp(in rowSource, funcs []*WindowFunc, env *planEnv) *windowOp {
	w := &windowOp{in: in, funcs: funcs, env: env}
	w.sch = append(Schema{}, in.Schema()...)
	for i, f := range funcs {
		env.winCols[f] = len(w.sch)
		w.sch = append(w.sch, ColMeta{Name: fmt.Sprintf("$win%d", i), Hidden: true})
	}
	return w
}

func (w *windowOp) Open() error {
	w.rows, w.pos, w.opened = nil, 0, false
	return w.in.Open()
}

func (w *windowOp) Close() error   { return w.in.Close() }
func (w *windowOp) Schema() Schema { return w.sch }

func (w *windowOp) build() error {
	inSch := w.in.Schema()
	var base [][]jsondom.Value
	for {
		row, ok, err := w.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		base = append(base, row)
	}
	ext := make([][]jsondom.Value, len(base))
	for i, row := range base {
		ext[i] = make([]jsondom.Value, len(w.sch))
		copy(ext[i], row)
		for j := len(row); j < len(w.sch); j++ {
			ext[i][j] = null
		}
	}
	for fi, f := range w.funcs {
		order, err := sortedIndexes(base, inSch, w.env, f.OrderBy)
		if err != nil {
			return err
		}
		col := len(inSch) + fi
		for rank, rowIdx := range order {
			ctx := w.env.ctx(inSch, base[rowIdx])
			switch f.Name {
			case "row_number":
				ext[rowIdx][col] = jsondom.NumberFromInt(int64(rank + 1))
			case "lag", "lead":
				offset := 1
				if len(f.Args) >= 2 {
					ov, err := evalExpr(ctx, f.Args[1])
					if err != nil {
						return err
					}
					if of, ok := numOf(ov); ok {
						offset = int(of)
					}
				}
				srcRank := rank - offset
				if f.Name == "lead" {
					srcRank = rank + offset
				}
				switch {
				case srcRank >= 0 && srcRank < len(order):
					v, err := evalExpr(w.env.ctx(inSch, base[order[srcRank]]), f.Args[0])
					if err != nil {
						return err
					}
					ext[rowIdx][col] = v
				case len(f.Args) >= 3:
					v, err := evalExpr(ctx, f.Args[2])
					if err != nil {
						return err
					}
					ext[rowIdx][col] = v
				}
			default:
				return fmt.Errorf("sql: unsupported window function %q", f.Name)
			}
		}
	}
	w.rows = ext
	return nil
}

func (w *windowOp) Next() ([]jsondom.Value, bool, error) {
	if !w.opened {
		w.opened = true
		if err := w.build(); err != nil {
			return nil, false, err
		}
	}
	if w.pos >= len(w.rows) {
		return nil, false, nil
	}
	row := w.rows[w.pos]
	w.pos++
	return row, true, nil
}

// ---------------------------------------------------------------------------
// sorting

// sortOp materializes and orders its input. Key expressions are
// evaluated against the input schema; positional items (ORDER BY 1)
// are resolved by the planner into expressions before reaching here.
type sortOp struct {
	in    rowSource
	items []OrderItem
	env   *planEnv

	rows   [][]jsondom.Value
	pos    int
	opened bool
}

func (s *sortOp) Open() error {
	s.rows, s.pos, s.opened = nil, 0, false
	return s.in.Open()
}

func (s *sortOp) Close() error   { return s.in.Close() }
func (s *sortOp) Schema() Schema { return s.in.Schema() }

func (s *sortOp) Next() ([]jsondom.Value, bool, error) {
	if !s.opened {
		s.opened = true
		for {
			row, ok, err := s.in.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			s.rows = append(s.rows, row)
		}
		inSch := s.in.Schema()
		var itemExprs []Expr
		for _, it := range s.items {
			itemExprs = append(itemExprs, it.Expr)
		}
		ctx := s.env.bindCtx(inSch, itemExprs...)
		keys := make([][]jsondom.Value, len(s.rows))
		for i, row := range s.rows {
			ctx.row = row
			keys[i] = make([]jsondom.Value, len(s.items))
			for k, it := range s.items {
				v, err := evalExpr(ctx, it.Expr)
				if err != nil {
					return nil, false, err
				}
				keys[i][k] = v
			}
		}
		idx := make([]int, len(s.rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for k, it := range s.items {
				c := compareForSort(keys[idx[a]][k], keys[idx[b]][k])
				if it.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		sorted := make([][]jsondom.Value, len(s.rows))
		for i, j := range idx {
			sorted[i] = s.rows[j]
		}
		s.rows = sorted
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// sortedIndexes sorts row indexes by ORDER BY items evaluated against
// the rows; used by window functions.
func sortedIndexes(rows [][]jsondom.Value, sch Schema, env *planEnv, items []OrderItem) ([]int, error) {
	keys := make([][]jsondom.Value, len(rows))
	for i, row := range rows {
		keys[i] = make([]jsondom.Value, len(items))
		for k, it := range items {
			if it.Expr == nil {
				return nil, fmt.Errorf("sql: positional ORDER BY not supported in OVER clauses")
			}
			v, err := evalExpr(env.ctx(sch, row), it.Expr)
			if err != nil {
				return nil, err
			}
			keys[i][k] = v
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, it := range items {
			c := compareForSort(keys[idx[a]][k], keys[idx[b]][k])
			if it.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx, nil
}

// compareForSort orders values with NULLs last (the Oracle default for
// ascending order) and incomparable kinds by kind id for determinism.
func compareForSort(a, b jsondom.Value) int {
	an, bn := isNull(a), isNull(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	}
	if cmp, ok := compareSQL(a, b); ok {
		return cmp
	}
	ak, bk := a.Kind(), b.Kind()
	switch {
	case ak < bk:
		return -1
	case ak > bk:
		return 1
	}
	return 0
}

// keyRender produces a canonical grouping/join key for a value.
func keyRender(v jsondom.Value) string {
	if isNull(v) {
		return "\x00N"
	}
	switch t := v.(type) {
	case jsondom.String:
		return "s" + string(t)
	case jsondom.Bool:
		if t {
			return "bt"
		}
		return "bf"
	default:
		if f, ok := numOf(v); ok {
			// numeric normalization so 1 and 1.0 group together
			return "n" + string(jsondom.NumberFromFloat(f))
		}
		return "x"
	}
}

// aliasWrap renames the table qualifier of every column, exposing a
// subquery or view under its alias.
type aliasWrap struct {
	in  rowSource
	sch Schema
}

func newAliasWrap(in rowSource, alias string, names []string) *aliasWrap {
	w := &aliasWrap{in: in}
	inSch := in.Schema()
	for i := range inSch {
		name := inSch[i].Name
		if names != nil && i < len(names) {
			name = names[i]
		}
		w.sch = append(w.sch, ColMeta{Table: alias, Name: name})
	}
	return w
}

func (w *aliasWrap) Open() error    { return w.in.Open() }
func (w *aliasWrap) Close() error   { return w.in.Close() }
func (w *aliasWrap) Schema() Schema { return w.sch }
func (w *aliasWrap) Next() ([]jsondom.Value, bool, error) {
	return w.in.Next()
}
