// Package workload generates the JSON document collections of the
// paper's evaluation (§6): the purchaseOrder collection driving the
// OLAP comparison (Figures 3-4, Table 13), the NOBENCH collection [6]
// (Figures 5-9), YCSB documents [31], and synthetic stand-ins for the
// customer data sets of Tables 10-12 (workOrder, salesOrder,
// eventMessage, bookOrder, LoanNotes, TwitterMsg, AcquisionDoc,
// TwitterMsgArchive, SensorData).
//
// The customer collections are proprietary; the generators here are
// shaped to match the published statistics (document size bands of
// Table 10, distinct-path counts, DMDV widths and fan-out ratios of
// Table 12): small/medium documents with moderate repetition, plus two
// large-document collections whose repetition is extreme. All
// generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/jsondom"
)

var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
	"victor", "whiskey", "xray", "yankee", "zulu",
}

var names = []string{
	"Alexis Bull", "Sarah Bell", "David Austin", "John Chen",
	"Diana Lorentz", "Hermann Baer", "Shelli Baida", "Guy Himuro",
	"Karen Colmenares", "Alexander Khoo",
}

var partDescriptions = []string{
	"Ethernet Cable", "Laser Printer", "USB Keyboard", "LCD Monitor",
	"Graphics Card", "SSD Drive", "Optical Mouse", "Docking Station",
	"Power Adapter", "Memory Module", "Webcam", "Headset",
}

func word(r *rand.Rand) string { return words[r.Intn(len(words))] }

func sentence(r *rand.Rand, n int) string {
	s := word(r)
	for i := 1; i < n; i++ {
		s += " " + word(r)
	}
	return s
}

func dateString(r *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 2013+r.Intn(3), 1+r.Intn(12), 1+r.Intn(28))
}

func num(i int64) jsondom.Number  { return jsondom.NumberFromInt(i) }
func str(s string) jsondom.String { return jsondom.String(s) }
func money(r *rand.Rand) jsondom.Number {
	return jsondom.NumberFromFloat(float64(r.Intn(100000)) / 100)
}

// ---------------------------------------------------------------------------
// purchaseOrder (Figures 3-4, Table 13)

// POItem is one line item of a purchase order.
type POItem struct {
	ItemNo      int64
	PartNo      string
	Description string
	Quantity    int64
	UnitPrice   float64
}

// PO is a purchase order in relational form; the REL storage mode of
// §6.3 decomposes documents into these fields.
type PO struct {
	DID          int64
	Reference    string
	Requestor    string
	CostCenter   string
	Instructions string
	PODate       string
	Status       string
	ShipToName   string
	ShipToCity   string
	ShipToZip    string
	Total        float64
	Items        []POItem
}

// GenPO generates the i-th purchase order deterministically from the
// collection seed.
func GenPO(seed int64, i int) *PO {
	r := rand.New(rand.NewSource(seed + int64(i)))
	nItems := 3 + r.Intn(5) // average 5 details per master (Table 12)
	po := &PO{
		DID:          int64(i),
		Reference:    fmt.Sprintf("%s-%d-%d", word(r), 2014+r.Intn(2), i),
		Requestor:    names[r.Intn(len(names))],
		CostCenter:   fmt.Sprintf("A%d", 10+r.Intn(90)),
		Instructions: sentence(r, 4),
		PODate:       dateString(r),
		Status:       []string{"open", "shipped", "billed"}[r.Intn(3)],
		ShipToName:   names[r.Intn(len(names))],
		ShipToCity:   word(r),
		ShipToZip:    fmt.Sprintf("%05d", r.Intn(99999)),
	}
	for n := 0; n < nItems; n++ {
		item := POItem{
			ItemNo:      int64(n + 1),
			PartNo:      fmt.Sprintf("%011d", r.Int63n(99999999999)),
			Description: partDescriptions[r.Intn(len(partDescriptions))],
			Quantity:    int64(1 + r.Intn(10)),
			UnitPrice:   float64(r.Intn(80000)) / 100,
		}
		po.Total += float64(item.Quantity) * item.UnitPrice
		po.Items = append(po.Items, item)
	}
	return po
}

// JSON renders the purchase order as a document (the JSON/BSON/OSON
// storage modes of §6.3).
func (po *PO) JSON() *jsondom.Object {
	items := jsondom.NewArray()
	for _, it := range po.Items {
		items.Append(jsondom.NewObject().
			Set("itemno", num(it.ItemNo)).
			Set("partno", str(it.PartNo)).
			Set("description", str(it.Description)).
			Set("quantity", num(it.Quantity)).
			Set("unitprice", jsondom.NumberFromFloat(it.UnitPrice)))
	}
	inner := jsondom.NewObject().
		Set("id", num(po.DID)).
		Set("reference", str(po.Reference)).
		Set("requestor", str(po.Requestor)).
		Set("costcenter", str(po.CostCenter)).
		Set("instructions", str(po.Instructions)).
		Set("podate", str(po.PODate)).
		Set("status", str(po.Status)).
		Set("shipto_name", str(po.ShipToName)).
		Set("shipto_city", str(po.ShipToCity)).
		Set("shipto_zip", str(po.ShipToZip)).
		Set("total", jsondom.NumberFromFloat(po.Total)).
		Set("items", items)
	return jsondom.NewObject().Set("purchaseOrder", inner)
}

// PurchaseOrders generates n purchase-order documents.
func PurchaseOrders(seed int64, n int) []jsondom.Value {
	out := make([]jsondom.Value, n)
	for i := range out {
		out[i] = GenPO(seed, i).JSON()
	}
	return out
}

// ---------------------------------------------------------------------------
// NOBENCH (Figures 5-9)

// NoBenchSparseTotal is the number of distinct sparse field names; each
// document carries NoBenchSparsePerDoc of them from one cluster, so a
// collection covers all 1000 names (Table 12: 1011 distinct paths).
const (
	NoBenchSparseTotal   = 1000
	NoBenchSparsePerDoc  = 10
	noBenchSparseCluster = NoBenchSparseTotal / NoBenchSparsePerDoc
)

// GenNoBench generates the i-th NOBENCH document: common scalar
// fields, two dynamically-typed fields, a nested array and object, and
// 10 sparse fields from the document's cluster.
func GenNoBench(seed int64, i int) *jsondom.Object {
	r := rand.New(rand.NewSource(seed + int64(i)))
	o := jsondom.NewObject().
		Set("str1", str(fmt.Sprintf("GBRDC%07d", i))).
		Set("str2", str(word(r))).
		Set("num", num(int64(i))).
		Set("bool", jsondom.Bool(i%2 == 0)).
		Set("thousandth", num(int64(i%1000)))
	// dyn1/dyn2 change type across documents (the heterogeneity Dremel
	// cannot represent, §7)
	if i%2 == 0 {
		o.Set("dyn1", num(int64(i)))
	} else {
		o.Set("dyn1", str(fmt.Sprintf("%d", i)))
	}
	if i%3 == 0 {
		o.Set("dyn2", num(int64(i%100)))
	} else {
		o.Set("dyn2", jsondom.Bool(i%3 == 1))
	}
	arr := jsondom.NewArray()
	for k := 0; k < 3+r.Intn(3); k++ {
		arr.Append(str(word(r)))
	}
	o.Set("nested_arr", arr)
	o.Set("nested_obj", jsondom.NewObject().
		Set("str", str(word(r))).
		Set("num", num(r.Int63n(10000))))
	cluster := i % noBenchSparseCluster
	for k := 0; k < NoBenchSparsePerDoc; k++ {
		field := fmt.Sprintf("sparse_%03d", cluster*NoBenchSparsePerDoc+k)
		o.Set(field, str(word(r)))
	}
	return o
}

// NoBench generates n NOBENCH documents.
func NoBench(seed int64, n int) []jsondom.Value {
	out := make([]jsondom.Value, n)
	for i := range out {
		out[i] = GenNoBench(seed, i)
	}
	return out
}

// NoBenchIdentical generates n structurally identical documents (the
// homogeneous insertion workload of Figures 7-8).
func NoBenchIdentical(seed int64, n int) []jsondom.Value {
	doc := GenNoBench(seed, 0)
	out := make([]jsondom.Value, n)
	for i := range out {
		out[i] = doc
	}
	return out
}

// NoBenchHetero generates n documents where every document adds one
// unique new field, so every insertion extends the DataGuide (the
// heterogeneous workload of Figure 8).
func NoBenchHetero(seed int64, n int) []jsondom.Value {
	out := make([]jsondom.Value, n)
	for i := range out {
		doc := GenNoBench(seed, 0)
		doc.Set(fmt.Sprintf("unique_field_%06d", i), num(int64(i)))
		out[i] = doc
	}
	return out
}

// NoBenchQueries returns the SQL/JSON equivalents of the 11 NOBENCH
// queries [6] over a table with JSON column jcol. Selective constants
// are scaled to the collection size n.
func NoBenchQueries(table, jcol string, n int) []string {
	lo, hi := n/4, n/4+n/100+1 // ~1% selectivity range
	return []string{
		// Q1: field projection
		fmt.Sprintf(`select json_value(%s, '$.str1'), json_value(%s, '$.num' returning number) from %s`, jcol, jcol, table),
		// Q2: nested field projection
		fmt.Sprintf(`select json_value(%s, '$.nested_obj.str'), json_value(%s, '$.nested_obj.num' returning number) from %s`, jcol, jcol, table),
		// Q3: sparse fields from one cluster
		fmt.Sprintf(`select json_value(%s, '$.sparse_110'), json_value(%s, '$.sparse_119') from %s where json_exists(%s, '$.sparse_110')`, jcol, jcol, table, jcol),
		// Q4: sparse fields from different clusters
		fmt.Sprintf(`select json_value(%s, '$.sparse_110'), json_value(%s, '$.sparse_220') from %s where json_exists(%s, '$.sparse_110') or json_exists(%s, '$.sparse_220')`, jcol, jcol, table, jcol, jcol),
		// Q5: exact string match
		fmt.Sprintf(`select count(*) from %s where json_value(%s, '$.str1') = 'GBRDC%07d'`, table, jcol, n/2),
		// Q6: numeric range
		fmt.Sprintf(`select json_value(%s, '$.num' returning number) from %s where json_value(%s, '$.num' returning number) between %d and %d`, jcol, table, jcol, lo, hi),
		// Q7: dynamically typed range
		fmt.Sprintf(`select json_value(%s, '$.dyn1' returning number) from %s where json_value(%s, '$.dyn1' returning number) between %d and %d`, jcol, table, jcol, lo, hi),
		// Q8: array membership
		fmt.Sprintf(`select count(*) from %s where json_exists(%s, '$.nested_arr[*]?(@ == "alpha")')`, table, jcol),
		// Q9: sparse field equality
		fmt.Sprintf(`select count(*) from %s where json_value(%s, '$.sparse_550') = 'bravo'`, table, jcol),
		// Q10: grouped aggregation over a range
		fmt.Sprintf(`select json_value(%s, '$.thousandth' returning number), count(*) from %s where json_value(%s, '$.num' returning number) between %d and %d group by json_value(%s, '$.thousandth' returning number)`, jcol, table, jcol, lo, lo+10*(hi-lo), jcol),
		// Q11: equi-join on a nested field
		fmt.Sprintf(`select count(*) from %s a join %s b on json_value(a.%s, '$.nested_obj.num' returning number) = json_value(b.%s, '$.num' returning number) where json_value(a.%s, '$.num' returning number) between %d and %d`, table, table, jcol, jcol, jcol, lo, hi),
	}
}

// ---------------------------------------------------------------------------
// YCSB

// GenYCSB generates the i-th YCSB document: ten flat 100-byte fields.
func GenYCSB(seed int64, i int) *jsondom.Object {
	r := rand.New(rand.NewSource(seed + int64(i)))
	o := jsondom.NewObject()
	for f := 0; f < 10; f++ {
		buf := make([]byte, 100)
		for k := range buf {
			buf[k] = byte('a' + r.Intn(26))
		}
		o.Set(fmt.Sprintf("field%d", f), str(string(buf)))
	}
	return o
}

// YCSB generates n YCSB documents.
func YCSB(seed int64, n int) []jsondom.Value {
	out := make([]jsondom.Value, n)
	for i := range out {
		out[i] = GenYCSB(seed, i)
	}
	return out
}
