package workload

import (
	"strings"
	"testing"

	"repro/internal/bson"
	"repro/internal/dataguide"
	"repro/internal/jsondom"
	"repro/internal/jsontext"
	"repro/internal/oson"
)

func TestPODeterminism(t *testing.T) {
	a, b := GenPO(1, 42), GenPO(1, 42)
	if !jsondom.Equal(a.JSON(), b.JSON()) {
		t.Fatal("GenPO not deterministic")
	}
	c := GenPO(2, 42)
	if jsondom.Equal(a.JSON(), c.JSON()) {
		t.Fatal("seed has no effect")
	}
}

func TestPOShape(t *testing.T) {
	docs := PurchaseOrders(1, 50)
	g := dataguide.New()
	totalItems := 0
	for i, d := range docs {
		po := GenPO(1, i)
		if po.DID != int64(i) {
			t.Fatalf("DID = %d", po.DID)
		}
		if len(po.Items) < 3 || len(po.Items) > 7 {
			t.Fatalf("item count = %d", len(po.Items))
		}
		totalItems += len(po.Items)
		// total is consistent with items
		sum := 0.0
		for _, it := range po.Items {
			sum += float64(it.Quantity) * it.UnitPrice
		}
		if diff := po.Total - sum; diff > 0.001 || diff < -0.001 {
			t.Fatalf("total mismatch: %v vs %v", po.Total, sum)
		}
		g.Add(d)
	}
	// fan-out ~5 (Table 12)
	fan := float64(totalItems) / 50
	if fan < 4 || fan > 6.5 {
		t.Fatalf("fan-out = %v", fan)
	}
	// every doc has the same structure: single-instance dataguide
	if g.Len() < 15 || g.Len() > 35 {
		t.Fatalf("distinct paths = %d", g.Len())
	}
}

func TestNoBenchShape(t *testing.T) {
	docs := NoBench(1, 200)
	g := dataguide.New()
	for i, d := range docs {
		o := d.(*jsondom.Object)
		// common fields
		for _, f := range []string{"str1", "str2", "num", "bool", "thousandth",
			"dyn1", "dyn2", "nested_arr", "nested_obj"} {
			if !o.Has(f) {
				t.Fatalf("doc %d missing %s", i, f)
			}
		}
		// exactly 10 sparse fields
		sparse := 0
		for _, f := range o.Fields() {
			if strings.HasPrefix(f.Name, "sparse_") {
				sparse++
			}
		}
		if sparse != NoBenchSparsePerDoc {
			t.Fatalf("doc %d sparse fields = %d", i, sparse)
		}
		g.Add(d)
	}
	// dyn1 changes type across documents
	d0 := docs[0].(*jsondom.Object)
	d1 := docs[1].(*jsondom.Object)
	v0, _ := d0.Get("dyn1")
	v1, _ := d1.Get("dyn1")
	if v0.Kind() == v1.Kind() {
		t.Fatal("dyn1 should vary in type")
	}
	// 200 docs cover 2 sparse clusters of 100 docs: all 1000 sparse
	// names appear over a full pass of 100 clusters; with 200 docs we
	// cover clusters 0..99 (i%100), i.e. all of them
	if g.Len() < 1000 {
		t.Fatalf("distinct paths = %d, want >= 1000", g.Len())
	}
}

func TestNoBenchIdenticalAndHetero(t *testing.T) {
	id := NoBenchIdentical(1, 5)
	for _, d := range id[1:] {
		if !jsondom.Equal(id[0], d) {
			t.Fatal("identical docs differ")
		}
	}
	het := NoBenchHetero(1, 5)
	g := dataguide.New()
	base := g.Len()
	for i, d := range het {
		added := g.Add(d)
		if i > 0 && len(added) != 1 {
			t.Fatalf("hetero doc %d added %d paths, want 1", i, len(added))
		}
	}
	_ = base
}

func TestNoBenchQueries(t *testing.T) {
	qs := NoBenchQueries("nobench", "jdoc", 1000)
	if len(qs) != 11 {
		t.Fatalf("queries = %d", len(qs))
	}
	for i, q := range qs {
		if !strings.Contains(q, "nobench") || !strings.Contains(q, "jdoc") {
			t.Errorf("Q%d malformed: %s", i+1, q)
		}
	}
	if !strings.Contains(qs[10], "join") {
		t.Fatalf("Q11 should join: %s", qs[10])
	}
	if !strings.Contains(qs[9], "group by") {
		t.Fatalf("Q10 should group: %s", qs[9])
	}
}

func TestYCSBShape(t *testing.T) {
	docs := YCSB(1, 10)
	g := dataguide.New()
	for _, d := range docs {
		o := d.(*jsondom.Object)
		if o.Len() != 10 {
			t.Fatalf("fields = %d", o.Len())
		}
		v, _ := o.Get("field0")
		if len(v.(jsondom.String)) != 100 {
			t.Fatalf("field length = %d", len(v.(jsondom.String)))
		}
		g.Add(d)
	}
	if g.Len() != 10 {
		t.Fatalf("distinct paths = %d, want 10 (Table 12)", g.Len())
	}
}

// TestCollectionStatistics verifies Table 12's shape: path counts and
// fan-out ratios are in the right bands per collection.
func TestCollectionStatistics(t *testing.T) {
	type band struct {
		paths [2]int
		fan   [2]float64
	}
	// loose bands around the paper's numbers
	bands := map[string]band{
		"workOrder":         {paths: [2]int{15, 45}, fan: [2]float64{3, 9}},
		"salesOrder":        {paths: [2]int{12, 30}, fan: [2]float64{2, 5}},
		"eventMessage":      {paths: [2]int{40, 110}, fan: [2]float64{7, 14}},
		"purchaseOrder":     {paths: [2]int{15, 45}, fan: [2]float64{3, 7}},
		"bookOrder":         {paths: [2]int{22, 120}, fan: [2]float64{7, 18}},
		"LoanNotes":         {paths: [2]int{120, 190}, fan: [2]float64{2, 5}},
		"TwitterMsg":        {paths: [2]int{60, 150}, fan: [2]float64{1, 4}},
		"AcquisionDoc":      {paths: [2]int{40, 120}, fan: [2]float64{20, 36}},
		"NOBENCHDoc":        {paths: [2]int{1000, 1060}, fan: [2]float64{1, 8}},
		"YCSBDoc":           {paths: [2]int{10, 10}, fan: [2]float64{1, 1}},
		"TwitterMsgArchive": {paths: [2]int{40, 160}, fan: [2]float64{300, 2500}},
		"SensorData":        {paths: [2]int{10, 70}, fan: [2]float64{3000, 4500}},
	}
	for _, c := range Collections() {
		b, ok := bands[c.Name]
		if !ok {
			t.Errorf("no band for %s", c.Name)
			continue
		}
		n := c.DefaultCount
		if n > 50 {
			n = 50
		}
		if c.Name == "NOBENCHDoc" {
			n = 120 // must cover all 100 sparse clusters
		}
		docs := c.Docs(7, n)
		g := dataguide.New()
		for _, d := range docs {
			g.Add(d)
		}
		if g.Len() < b.paths[0] || g.Len() > b.paths[1] {
			t.Errorf("%s: distinct paths = %d, want in %v", c.Name, g.Len(), b.paths)
		}
		fan := fanOut(g, len(docs))
		if fan < b.fan[0] || fan > b.fan[1] {
			t.Errorf("%s: fan-out = %.1f, want in %v", c.Name, fan, b.fan)
		}
	}
}

// fanOut estimates the DMDV fan-out: occurrences of the most repeated
// leaf per document.
func fanOut(g *dataguide.Guide, docs int) float64 {
	max := 0
	for _, e := range g.LeafEntries() {
		if e.Occurrences > max {
			max = e.Occurrences
		}
	}
	return float64(max) / float64(docs)
}

// TestSizeStatistics verifies Table 10's shape: for large repetitive
// documents OSON is much smaller than compact JSON text; for small
// documents the formats are comparable.
func TestSizeStatistics(t *testing.T) {
	// small docs: within 2x of each other
	po := GenPO(1, 0).JSON()
	jText := len(jsontext.Serialize(po))
	jOson := len(oson.MustEncode(po))
	jBson := len(bson.MustEncode(po))
	if jOson > 2*jText || jBson > 2*jText {
		t.Fatalf("small doc sizes out of band: text=%d bson=%d oson=%d", jText, jBson, jOson)
	}
	// large repetitive doc: OSON must be substantially smaller than text
	old := SensorReadings
	SensorReadings = 2000
	defer func() { SensorReadings = old }()
	sd := GenSensorData(1, 0)
	sText := len(jsontext.Serialize(sd))
	sOson := len(oson.MustEncode(sd))
	if float64(sOson) > 0.8*float64(sText) {
		t.Fatalf("sensor doc: oson=%d not much smaller than text=%d", sOson, sText)
	}
}

func BenchmarkGenPO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenPO(1, i)
	}
}

func BenchmarkGenNoBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenNoBench(1, i)
	}
}
