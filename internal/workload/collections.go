// Synthetic stand-ins for the paper's customer JSON collections
// (Tables 10-12). Each generator is shaped to match the published
// statistics: approximate document size band (Table 10), distinct-path
// count, DMDV width and fan-out ratio (Table 12). TwitterMsgArchive
// and SensorData are the two large-document collections whose heavy
// structural repetition makes OSON much smaller than text (§6.1);
// their default sizes here are scaled down from the paper's 5 MB/41 MB
// to keep test wall-clock reasonable — the repetition *ratios* are
// preserved.

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/jsondom"
)

// Collection couples a named generator with its default document
// count for size/statistics experiments.
type Collection struct {
	Name string
	// Docs generates n documents with the given seed.
	Docs func(seed int64, n int) []jsondom.Value
	// DefaultCount is a sensible collection size for Tables 10-12.
	DefaultCount int
}

// Collections returns the twelve collections of Tables 10-12 in paper
// order.
func Collections() []Collection {
	return []Collection{
		{Name: "workOrder", Docs: genN(GenWorkOrder), DefaultCount: 200},
		{Name: "salesOrder", Docs: genN(GenSalesOrder), DefaultCount: 200},
		{Name: "eventMessage", Docs: genN(GenEventMessage), DefaultCount: 200},
		{Name: "purchaseOrder", Docs: func(seed int64, n int) []jsondom.Value { return PurchaseOrders(seed, n) }, DefaultCount: 200},
		{Name: "bookOrder", Docs: genN(GenBookOrder), DefaultCount: 200},
		{Name: "LoanNotes", Docs: genN(GenLoanNote), DefaultCount: 100},
		{Name: "TwitterMsg", Docs: genN(GenTwitterMsg), DefaultCount: 100},
		{Name: "AcquisionDoc", Docs: genN(GenAcquisitionDoc), DefaultCount: 100},
		{Name: "NOBENCHDoc", Docs: NoBench, DefaultCount: 500},
		{Name: "YCSBDoc", Docs: YCSB, DefaultCount: 200},
		{Name: "TwitterMsgArchive", Docs: genN(GenTwitterMsgArchive), DefaultCount: 3},
		{Name: "SensorData", Docs: genN(GenSensorData), DefaultCount: 2},
	}
}

func genN(gen func(seed int64, i int) jsondom.Value) func(int64, int) []jsondom.Value {
	return func(seed int64, n int) []jsondom.Value {
		out := make([]jsondom.Value, n)
		for i := range out {
			out[i] = gen(seed, i)
		}
		return out
	}
}

// GenWorkOrder: ~29 distinct paths, fan-out ~5.5 (steps array).
func GenWorkOrder(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i)))
	steps := jsondom.NewArray()
	for k := 0; k < 4+r.Intn(4); k++ {
		steps.Append(jsondom.NewObject().
			Set("stepNo", num(int64(k+1))).
			Set("action", str(sentence(r, 3))).
			Set("technician", str(names[r.Intn(len(names))])).
			Set("durationMin", num(int64(10+r.Intn(240)))).
			Set("completed", jsondom.Bool(r.Intn(2) == 0)))
	}
	return jsondom.NewObject().Set("workOrder", jsondom.NewObject().
		Set("woNumber", num(int64(i))).
		Set("priority", str([]string{"low", "medium", "high"}[r.Intn(3)])).
		Set("opened", str(dateString(r))).
		Set("due", str(dateString(r))).
		Set("site", str(word(r))).
		Set("asset", jsondom.NewObject().
			Set("assetId", str(fmt.Sprintf("AST-%06d", r.Intn(999999)))).
			Set("model", str(word(r))).
			Set("vendor", str(word(r)))).
		Set("summary", str(sentence(r, 5))).
		Set("cost", money(r)).
		Set("steps", steps))
}

// GenSalesOrder: ~20 distinct paths, fan-out ~3.
func GenSalesOrder(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 1))
	lines := jsondom.NewArray()
	for k := 0; k < 2+r.Intn(3); k++ {
		lines.Append(jsondom.NewObject().
			Set("sku", str(fmt.Sprintf("SKU-%05d", r.Intn(99999)))).
			Set("qty", num(int64(1+r.Intn(5)))).
			Set("price", money(r)))
	}
	return jsondom.NewObject().Set("salesOrder", jsondom.NewObject().
		Set("orderNo", num(int64(i))).
		Set("customer", str(names[r.Intn(len(names))])).
		Set("channel", str([]string{"web", "store", "phone"}[r.Intn(3)])).
		Set("orderDate", str(dateString(r))).
		Set("currency", str("USD")).
		Set("shipping", jsondom.NewObject().
			Set("method", str(word(r))).
			Set("address", str(sentence(r, 3))).
			Set("zip", str(fmt.Sprintf("%05d", r.Intn(99999))))).
		Set("discount", money(r)).
		Set("lines", lines))
}

// GenEventMessage: ~79 distinct paths, fan-out ~10 (events array),
// deeper header/payload structure.
func GenEventMessage(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 2))
	events := jsondom.NewArray()
	for k := 0; k < 8+r.Intn(5); k++ {
		events.Append(jsondom.NewObject().
			Set("seq", num(int64(k))).
			Set("kind", str(word(r))).
			Set("ts", str(dateString(r))).
			Set("detail", jsondom.NewObject().
				Set("code", num(int64(r.Intn(500)))).
				Set("message", str(sentence(r, 4))).
				Set("severity", str([]string{"info", "warn", "error"}[r.Intn(3)]))))
	}
	hdr := jsondom.NewObject()
	for _, f := range []string{"source", "destination", "protocol", "version",
		"correlationId", "sessionId", "tenant", "region", "zone", "host"} {
		hdr.Set(f, str(word(r)+fmt.Sprint(r.Intn(100))))
	}
	meta := jsondom.NewObject()
	for _, f := range []string{"schemaRev", "producer", "contentType",
		"encoding", "compression", "retention", "priority", "partition"} {
		meta.Set(f, str(word(r)))
	}
	// payload with a handful of typed sub-objects widens the path count
	payload := jsondom.NewObject().
		Set("metrics", jsondom.NewObject().
			Set("cpu", jsondom.NumberFromFloat(r.Float64()*100)).
			Set("memory", jsondom.NumberFromFloat(r.Float64()*64)).
			Set("disk", jsondom.NumberFromFloat(r.Float64()*1000)).
			Set("network", jsondom.NumberFromFloat(r.Float64()*10))).
		Set("labels", jsondom.NewObject().
			Set("app", str(word(r))).
			Set("team", str(word(r))).
			Set("env", str([]string{"dev", "stage", "prod"}[r.Intn(3)]))).
		Set("flags", jsondom.NewObject().
			Set("replayed", jsondom.Bool(r.Intn(2) == 0)).
			Set("sampled", jsondom.Bool(r.Intn(2) == 0)))
	return jsondom.NewObject().Set("eventMessage", jsondom.NewObject().
		Set("id", num(int64(i))).
		Set("header", hdr).
		Set("meta", meta).
		Set("payload", payload).
		Set("events", events))
}

// GenBookOrder: ~86 distinct paths, fan-out ~11.7 (books + reviews
// arrays).
func GenBookOrder(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 3))
	books := jsondom.NewArray()
	for k := 0; k < 4+r.Intn(4); k++ {
		reviews := jsondom.NewArray()
		for m := 0; m < 1+r.Intn(2); m++ {
			reviews.Append(jsondom.NewObject().
				Set("reviewer", str(names[r.Intn(len(names))])).
				Set("stars", num(int64(1+r.Intn(5)))).
				Set("comment", str(sentence(r, 6))))
		}
		books.Append(jsondom.NewObject().
			Set("isbn", str(fmt.Sprintf("978-%09d", r.Intn(999999999)))).
			Set("title", str(sentence(r, 3))).
			Set("author", jsondom.NewObject().
				Set("first", str(word(r))).
				Set("last", str(word(r))).
				Set("country", str(word(r)))).
			Set("price", money(r)).
			Set("format", str([]string{"hardcover", "paperback", "ebook"}[r.Intn(3)])).
			Set("reviews", reviews))
	}
	buyer := jsondom.NewObject()
	for _, f := range []string{"name", "email", "street", "city", "state",
		"zip", "country", "phone", "loyaltyTier"} {
		buyer.Set(f, str(word(r)))
	}
	return jsondom.NewObject().Set("bookOrder", jsondom.NewObject().
		Set("orderId", num(int64(i))).
		Set("placed", str(dateString(r))).
		Set("buyer", buyer).
		Set("giftWrap", jsondom.Bool(r.Intn(4) == 0)).
		Set("total", money(r)).
		Set("books", books))
}

// GenLoanNote: ~153 distinct paths (very wide singleton structure),
// fan-out ~3 (notes array).
func GenLoanNote(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 4))
	loan := jsondom.NewObject().Set("loanId", num(int64(i)))
	// wide groups of singleton fields
	for _, grp := range []struct {
		name   string
		fields int
	}{
		{"borrower", 25}, {"coBorrower", 25}, {"property", 20},
		{"terms", 25}, {"underwriting", 20}, {"servicing", 15},
	} {
		o := jsondom.NewObject()
		for f := 0; f < grp.fields; f++ {
			key := fmt.Sprintf("%s_f%02d", grp.name, f)
			if f%3 == 0 {
				o.Set(key, money(r))
			} else {
				o.Set(key, str(word(r)))
			}
		}
		loan.Set(grp.name, o)
	}
	notes := jsondom.NewArray()
	for k := 0; k < 2+r.Intn(3); k++ {
		notes.Append(jsondom.NewObject().
			Set("noteDate", str(dateString(r))).
			Set("officer", str(names[r.Intn(len(names))])).
			Set("category", str(word(r))).
			Set("text", str(sentence(r, 10))))
	}
	loan.Set("notes", notes)
	return jsondom.NewObject().Set("loanNote", loan)
}

// tweetObject builds one tweet-like object: a wide user sub-object and
// entity structures; withRetweet nests one level of retweeted status
// (TwitterMsg reaches ~362 distinct paths this way).
func tweetObject(r *rand.Rand, i int, withRetweet bool) *jsondom.Object {
	user := jsondom.NewObject()
	for _, f := range []string{
		"id_str", "name", "screen_name", "location", "description", "url",
		"lang", "time_zone", "created_at", "profile_image_url",
		"profile_background_color", "profile_text_color",
		"profile_link_color", "profile_sidebar_fill_color",
	} {
		user.Set(f, str(word(r)+fmt.Sprint(r.Intn(1000))))
	}
	for _, f := range []string{
		"followers_count", "friends_count", "listed_count",
		"favourites_count", "statuses_count", "utc_offset",
	} {
		user.Set(f, num(r.Int63n(100000)))
	}
	for _, f := range []string{
		"protected", "verified", "geo_enabled", "contributors_enabled",
		"is_translator", "default_profile",
	} {
		user.Set(f, jsondom.Bool(r.Intn(2) == 0))
	}
	hashtags := jsondom.NewArray()
	for k := 0; k < 1+r.Intn(3); k++ {
		hashtags.Append(jsondom.NewObject().
			Set("text", str(word(r))).
			Set("indices", jsondom.NewArray(num(int64(r.Intn(50))), num(int64(50+r.Intn(50))))))
	}
	urls := jsondom.NewArray()
	if r.Intn(2) == 0 {
		urls.Append(jsondom.NewObject().
			Set("url", str("https://t.co/"+word(r))).
			Set("expanded_url", str("https://example.com/"+word(r))).
			Set("display_url", str(word(r)+".com")))
	}
	tweet := jsondom.NewObject().
		Set("id_str", str(fmt.Sprintf("%018d", i))).
		Set("text", str(sentence(r, 8))).
		Set("created_at", str(dateString(r))).
		Set("source", str("<a href=\"https://example.com\">app</a>")).
		Set("lang", str([]string{"en", "ja", "es", "de"}[r.Intn(4)])).
		Set("retweet_count", num(r.Int63n(1000))).
		Set("favorite_count", num(r.Int63n(1000))).
		Set("truncated", jsondom.Bool(false)).
		Set("favorited", jsondom.Bool(r.Intn(2) == 0)).
		Set("retweeted", jsondom.Bool(r.Intn(2) == 0)).
		Set("in_reply_to_status_id_str", jsondom.Null{}).
		Set("in_reply_to_user_id_str", jsondom.Null{}).
		Set("user", user).
		Set("entities", jsondom.NewObject().
			Set("hashtags", hashtags).
			Set("urls", urls).
			Set("user_mentions", jsondom.NewArray()))
	if withRetweet {
		tweet.Set("retweeted_status", tweetObject(r, i+1, false))
	}
	return tweet
}

// GenTwitterMsg: a single tweet with a nested retweeted status —
// medium-size documents with many distinct paths but little
// repetition (fan-out ~1.8).
func GenTwitterMsg(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 5))
	return tweetObject(r, i, r.Intn(2) == 0)
}

// GenAcquisitionDoc: ~88 distinct paths with a large line array
// (fan-out ~28).
func GenAcquisitionDoc(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 6))
	lines := jsondom.NewArray()
	for k := 0; k < 24+r.Intn(8); k++ {
		lines.Append(jsondom.NewObject().
			Set("lineNo", num(int64(k+1))).
			Set("clin", str(fmt.Sprintf("CLIN-%04d", k))).
			Set("description", str(sentence(r, 5))).
			Set("naics", str(fmt.Sprintf("%06d", r.Intn(999999)))).
			Set("amount", money(r)).
			Set("fundingSource", str(word(r))))
	}
	parties := jsondom.NewObject()
	for _, role := range []string{"contractor", "agency", "office"} {
		p := jsondom.NewObject()
		for _, f := range []string{"name", "duns", "address", "city",
			"state", "zip", "poc", "phone"} {
			p.Set(f, str(word(r)))
		}
		parties.Set(role, p)
	}
	return jsondom.NewObject().Set("acquisition", jsondom.NewObject().
		Set("contractId", str(fmt.Sprintf("W%07d", i))).
		Set("awarded", str(dateString(r))).
		Set("vehicle", str(word(r))).
		Set("setAside", str(word(r))).
		Set("ceiling", money(r)).
		Set("parties", parties).
		Set("lines", lines))
}

// TwitterMsgArchiveTweets scales the archive document; the paper's
// archive is ~5 MB with fan-out 5405.
var TwitterMsgArchiveTweets = 400

// GenTwitterMsgArchive: one large document holding an archive of
// tweets; repeated structure dominates, so the OSON dictionary segment
// amortizes to ~0% (Table 11).
func GenTwitterMsgArchive(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 7))
	msgs := jsondom.NewArray()
	for k := 0; k < TwitterMsgArchiveTweets; k++ {
		msgs.Append(tweetObject(r, k, false))
	}
	return jsondom.NewObject().
		Set("archiveId", num(int64(i))).
		Set("exported", str(dateString(r))).
		Set("messages", msgs)
}

// SensorReadings scales the sensor document; the paper's is ~41 MB
// with fan-out 32100.
var SensorReadings = 4000

// GenSensorData: one large document of sensor readings with the
// verbose field naming typical of sensor JSON exports; the navigation
// segment dominates the OSON encoding (Table 11: 80% tree, 0.01%
// dictionary) and the repeated names/values make OSON much smaller
// than text (Table 10).
func GenSensorData(seed int64, i int) jsondom.Value {
	r := rand.New(rand.NewSource(seed + int64(i) + 8))
	statuses := []jsondom.Value{str("ok"), str("ok"), str("ok"), str("drift"), str("recalibrated")}
	readings := jsondom.NewArray()
	for k := 0; k < SensorReadings; k++ {
		readings.Append(jsondom.NewObject().
			Set("timestampUtc", str(fmt.Sprintf("2014-05-%02dT%02d:%02d:%02d.000Z",
				1+k/86400%28, k/3600%24, k/60%60, k%60))).
			Set("temperatureCelsius", jsondom.NumberFromFloat(float64(int(200000+r.Float64()*100000))/10000)).
			Set("humidityPercent", num(int64(30+r.Intn(40)))).
			Set("batteryVolts", jsondom.NumberFromFloat(float64(330+r.Intn(50))/100)).
			Set("signalQuality", num(int64(r.Intn(4)))).
			Set("statusFlags", statuses[r.Intn(len(statuses))]))
	}
	sensor := jsondom.NewObject().
		Set("sensorId", str(fmt.Sprintf("S-%05d", i))).
		Set("model", str(word(r))).
		Set("firmware", str("v2.3.1")).
		Set("site", str(word(r))).
		Set("lat", jsondom.NumberFromFloat(r.Float64()*180-90)).
		Set("lon", jsondom.NumberFromFloat(r.Float64()*360-180)).
		Set("unit", str("celsius"))
	return jsondom.NewObject().
		Set("sensor", sensor).
		Set("calibration", jsondom.NewObject().
			Set("offset", jsondom.NumberFromFloat(r.Float64())).
			Set("scale", jsondom.NumberFromFloat(1+r.Float64()/100)).
			Set("calibrated", str(dateString(r)))).
		Set("readings", readings)
}
