// Command fsdmvet is the repository's invariant checker: a
// multichecker in the shape of go vet that runs the nine
// project-specific analyzers from internal/fsdmvet (cancelcheck,
// immutcheck, metriccheck, lockcheck, errwrapcheck, poolcheck, and
// the flow-sensitive leakcheck, escapecheck, blockcheck) over every
// package of the module. It exits 1 when any invariant is violated
// and 2 when the tree fails to load, so `make lint` (wired into
// `make check`) gates commits on the engine's concurrency,
// immutability, lifetime, and metrics contracts.
//
// Usage:
//
//	fsdmvet [-root dir] [-v] [import/path ...]    (default: every module package)
//
// -v prints a wall-time breakdown to stderr: the one shared
// load-and-typecheck phase, then each analyzer's accumulated run
// time. Findings print as file:line:col: analyzer: message. Suppress
// one deliberately with a same-line or preceding-line comment:
//
//	//fsdmvet:ignore <analyzer> <reason>
//
// The reason is required; malformed directives are themselves
// reported. See docs/STATIC_ANALYSIS.md for the analyzer catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fsdmvet"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	verbose := flag.Bool("v", false, "print per-analyzer wall time to stderr")
	flag.Parse()
	n, timings, err := fsdmvet.RunSuiteTimed(*root, flag.Args(), os.Stdout)
	if *verbose {
		fmt.Fprintf(os.Stderr, "fsdmvet: load+typecheck %v\n", timings.Load.Round(time.Millisecond))
		for _, t := range timings.Analyzers {
			fmt.Fprintf(os.Stderr, "fsdmvet: %-12s %v\n", t.Analyzer, t.Elapsed.Round(time.Millisecond))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsdmvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "fsdmvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
