// Command fsdmvet is the repository's invariant checker: a
// multichecker in the shape of go vet that runs the six
// project-specific analyzers from internal/fsdmvet (cancelcheck,
// immutcheck, metriccheck, lockcheck, errwrapcheck, poolcheck) over
// every package of the module. It exits 1 when any invariant is violated
// and 2 when the tree fails to load, so `make lint` (wired into
// `make check`) gates commits on the engine's concurrency,
// immutability, and metrics contracts.
//
// Usage:
//
//	fsdmvet [-root dir] [import/path ...]    (default: every module package)
//
// Findings print as file:line:col: analyzer: message. Suppress one
// deliberately with a same-line or preceding-line comment:
//
//	//fsdmvet:ignore <analyzer> <reason>
//
// The reason is required; malformed directives are themselves
// reported. See docs/STATIC_ANALYSIS.md for the analyzer catalog.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fsdmvet"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	flag.Parse()
	n, err := fsdmvet.RunSuite(*root, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsdmvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "fsdmvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
