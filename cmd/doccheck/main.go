// Command doccheck is the repository's godoc lint: it walks Go
// packages and reports every exported identifier that lacks a doc
// comment, plus every package missing a package comment. It exits
// non-zero when anything is flagged, so `make doccheck` (wired into
// `make check`) keeps the exported surface documented.
//
// Scope: package clauses, top-level exported functions, types, consts
// and vars, and exported methods on exported receiver types. A doc
// comment on a const/var/type group covers every spec in the group, as
// is idiomatic for enum-style blocks. Test files and testdata/vendor
// directories are skipped.
//
// Usage:
//
//	doccheck [dir ...]    (default: internal cmd)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var dirs []string
	for _, root := range roots {
		if err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			switch d.Name() {
			case "testdata", "vendor":
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs = append(dirs, path)
			}
			return nil
		}); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)
	problems := 0
	for _, dir := range dirs {
		problems += checkDir(dir)
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", problems)
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses one package directory and reports undocumented
// exported identifiers; returns the number of problems found.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	problems := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), what)
		problems++
	}
	for _, pkg := range pkgs {
		pkgDocumented := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				pkgDocumented = true
			}
		}
		if !pkgDocumented {
			// anchor the report at the first file of the package
			var first *ast.File
			var firstName string
			for name, f := range pkg.Files {
				if first == nil || name < firstName {
					first, firstName = f, name
				}
			}
			report(first.Package, fmt.Sprintf("package %s has no package comment", pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return problems
}

// checkDecl flags one top-level declaration's undocumented exported
// names through the report callback.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || hasDoc(d.Doc) {
			return
		}
		if d.Recv != nil {
			recv := receiverTypeName(d.Recv)
			if !ast.IsExported(recv) {
				return // method of an unexported type: not API surface
			}
			report(d.Pos(), fmt.Sprintf("exported method %s.%s has no doc comment", recv, d.Name.Name))
			return
		}
		report(d.Pos(), fmt.Sprintf("exported function %s has no doc comment", d.Name.Name))
	case *ast.GenDecl:
		groupDoc := hasDoc(d.Doc)
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) {
					report(s.Pos(), fmt.Sprintf("exported type %s has no doc comment", s.Name.Name))
				}
			case *ast.ValueSpec:
				if groupDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(s.Pos(), fmt.Sprintf("exported %s %s has no doc comment", d.Tok, name.Name))
					}
				}
			}
		}
	}
}

func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// receiverTypeName extracts the bare type name of a method receiver,
// unwrapping pointers and generic instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
