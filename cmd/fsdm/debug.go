// Optional debug HTTP endpoint for the SQL shell (-debug-addr). Serves
// the default metrics registry as JSON at /debug/fsdmmetrics, the
// standard expvar dump at /debug/vars (the registry snapshot is also
// published there under the "fsdmmetrics" key), and the runtime
// profiles at /debug/pprof/. Everything is stdlib; nothing is
// registered unless the flag is set — the handlers live on the default
// mux, but no listener exists without -debug-addr.

package main

import (
	"encoding/json"
	"expvar"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"time"

	"repro/internal/metrics"
)

func init() {
	expvar.Publish("fsdmmetrics", expvar.Func(func() any {
		return metrics.Default.Snapshot()
	}))
}

// serveDebug blocks serving the debug endpoints on addr; run it in a
// goroutine.
func serveDebug(addr string) error {
	http.HandleFunc("/debug/fsdmmetrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metrics.Default.Snapshot()) //nolint:errcheck
	})
	srv := &http.Server{Addr: addr, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
