// Command fsdm is a small CLI for the FSDM library:
//
//	fsdm sql [flags]            read SQL from stdin, one statement per
//	                            line (lines may be continued with a
//	                            trailing backslash), print results
//	fsdm dataguide FILE...      print the DataGuide implied by JSON files
//	fsdm encode FILE...         compare JSON/BSON/OSON encoding sizes
//
// The SQL shell runs against a fresh in-memory database; pipe a script:
//
//	fsdm sql <<'EOF'
//	create table t (id number, jdoc varchar2(4000) check (jdoc is json));
//	insert into t values (1, '{"a":{"b":[1,2,3]}}');
//	select json_query(jdoc, '$.a.b') from t;
//	EOF
//
// Observability flags of the sql subcommand (docs/OBSERVABILITY.md):
//
//	-debug-addr addr            serve /debug/fsdmmetrics (JSON metrics),
//	                            /debug/vars and /debug/pprof on addr
//	-slow-query-log FILE        log statements at or above the threshold
//	                            ("stderr" to log to standard error)
//	-slow-query-threshold dur   slow-statement latency threshold
//	                            (default 100ms)
//	-plan-cache n               LRU plan cache capacity; 0 disables
//	                            caching (every statement hard-parses)
//	-imc-vectorized             batch-vectorized IMC scans (selection
//	                            bitmaps + zone-map pruning); default
//	                            true, false keeps the row-at-a-time
//	                            vector filter path
//	-batch-exec                 batch execution spine (pooled row
//	                            batches + code-space agg/join fast
//	                            paths); default true, false keeps
//	                            row-at-a-time operators
//	-cost-based                 cost-based planning from DataGuide/IMC
//	                            statistics (conjunct ordering, access
//	                            path and join build-side selection);
//	                            default true, false keeps the heuristic
//	                            planner (EXPLAIN still shows est-rows)
//	-parallel-exec              morsel-driven parallel operators
//	                            (partition fan-out of aggregation,
//	                            join probe, and sort above the scan);
//	                            default true, false keeps every
//	                            operator single-goroutine
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bson"
	"repro/internal/dataguide"
	"repro/internal/jsondom"
	"repro/internal/jsontext"
	"repro/internal/oson"
	"repro/internal/sqlengine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sql":
		runSQL(os.Args[2:])
	case "dataguide":
		runDataGuide(os.Args[2:])
	case "encode":
		runEncode(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fsdm sql [flags] | fsdm dataguide FILE... | fsdm encode FILE...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsdm:", err)
	os.Exit(1)
}

func runSQL(args []string) {
	fs := flag.NewFlagSet("fsdm sql", flag.ExitOnError)
	debugAddr := fs.String("debug-addr", "", "serve /debug/fsdmmetrics, /debug/vars and /debug/pprof on this address")
	slowLog := fs.String("slow-query-log", "", `write slow-query entries to this file ("stderr" for standard error)`)
	slowThreshold := fs.Duration("slow-query-threshold", 100*time.Millisecond, "latency at or above which a statement is logged")
	planCache := fs.Int("plan-cache", 128, "LRU plan cache capacity; 0 disables caching")
	imcVectorized := fs.Bool("imc-vectorized", true, "batch-vectorized IMC scans (selection bitmaps + zone-map pruning); false keeps the row-at-a-time vector filters")
	batchExec := fs.Bool("batch-exec", true, "batch execution spine (pooled row batches through filter/project/limit, code-space aggregation and join fast paths); false keeps row-at-a-time operators")
	costBased := fs.Bool("cost-based", true, "cost-based planning from DataGuide/IMC statistics (conjunct ordering, access-path and join build-side selection); false keeps the heuristic planner")
	parallelExec := fs.Bool("parallel-exec", true, "morsel-driven parallel operators (partition fan-out of aggregation, join probe, and sort above the scan); false keeps single-goroutine operators")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	eng := sqlengine.New()
	eng.SetPlanCacheSize(*planCache)
	eng.Planner.DisableVectorizedScan = !*imcVectorized
	eng.Planner.DisableBatchExec = !*batchExec
	eng.Planner.DisableCostBasedPlanner = !*costBased
	eng.Planner.DisableParallelExec = !*parallelExec
	if *slowLog != "" {
		var w io.Writer = os.Stderr
		if *slowLog != "stderr" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close() //nolint:errcheck
			w = f
		}
		eng.SetSlowQueryLog(w, *slowThreshold)
	}
	if *debugAddr != "" {
		//fsdmvet:ignore leakcheck process-lifetime debug daemon; the HTTP server dies with the REPL, there is no Close to join it on
		go func() {
			if err := serveDebug(*debugAddr); err != nil {
				fmt.Fprintln(os.Stderr, "fsdm: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "fsdm: debug endpoint on http://%s/debug/fsdmmetrics\n", *debugAddr)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var pending strings.Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "--") {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteString("\n")
			continue
		}
		pending.WriteString(line)
		stmt := pending.String()
		pending.Reset()
		// Ctrl-C aborts the running statement (cooperative
		// cancellation through the execution context), not the shell.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		res, err := eng.ExecContext(ctx, stmt)
		stop()
		if errors.Is(err, sqlengine.ErrQueryCancelled) {
			fmt.Fprintf(os.Stderr, "line %d: interrupted\n", lineNo)
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
		printResult(res)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func printResult(res *sqlengine.Result) {
	if len(res.Columns) == 0 {
		fmt.Println("ok")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderDatum(v)
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	w.Flush() //nolint:errcheck
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func renderDatum(v jsondom.Value) string {
	switch t := v.(type) {
	case jsondom.Null:
		return "NULL"
	case jsondom.String:
		return string(t)
	default:
		return jsontext.SerializeString(v)
	}
}

func runDataGuide(files []string) {
	if len(files) == 0 {
		usage()
	}
	g := dataguide.New()
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		if _, err := g.AddText(text); err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "path\ttype\tfrequency\tmax length")
	for _, e := range g.Entries() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\n", e.Path, e.TypeString(), e.Frequency, e.MaxLen)
	}
	w.Flush() //nolint:errcheck
}

func runEncode(files []string) {
	if len(files) == 0 {
		usage()
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "file\tJSON text\tBSON\tOSON\tOSON dict/tree/values")
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		dom, err := jsontext.Parse(text)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
		compact := jsontext.Serialize(dom)
		bb, err := bson.Encode(dom)
		if err != nil {
			fatal(err)
		}
		ob, err := oson.Encode(dom)
		if err != nil {
			fatal(err)
		}
		od, err := oson.Parse(ob)
		if err != nil {
			fatal(err)
		}
		d, t, v := od.SegmentSizes()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d/%d/%d\n", f, len(compact), len(bb), len(ob), d, t, v)
	}
	w.Flush() //nolint:errcheck
}
