// Command allocguard is the allocation-regression gate wired into
// `make bench-smoke`: it reads `go test -bench -benchmem` output on
// stdin, extracts allocs/op for each benchmark named in the committed
// baseline file, and exits 1 when any exceeds its baseline by more
// than the tolerance (10%). PR 9 cut JSON_TABLE expansion from ~302k
// to ~34k allocs/op; the guard keeps later PRs from silently giving
// that back.
//
// Usage:
//
//	go test -run '^$' -bench Fig3OLAPOSON -benchmem . | allocguard -baseline ALLOC_BASELINE.txt
//
// The baseline file holds one entry per line — `BenchmarkName allocs`
// — with #-comments and blank lines ignored. Every listed benchmark
// must appear in the input; missing ones fail the gate with a single
// consolidated listing, alongside any unmatched benchmarks the output
// did carry (the usual culprits after a rename — the baseline should
// be renamed too, not silently dropped). Improvements beyond the
// baseline print a hint to ratchet the committed number down.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// tolerance is how far above baseline allocs/op may drift before the
// gate fails: benchmarks allocate near-deterministically, so 10%
// absorbs pool warmup variance while catching any real regression.
const tolerance = 1.10

// benchLine matches one -benchmem result line, capturing the
// benchmark name (with any -N GOMAXPROCS suffix stripped) and its
// allocs/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+.*?(\d+)\s+allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "ALLOC_BASELINE.txt", "committed allocs/op baseline file")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(2)
	}

	got, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(2)
	}

	if failed := compare(baseline, got, *baselinePath, os.Stdout, os.Stderr); failed {
		os.Exit(1)
	}
}

// parseBench extracts allocs/op per benchmark from go test -benchmem
// output, echoing every line to echo for the build log.
func parseBench(r io.Reader, echo io.Writer) (map[string]int64, error) {
	got := map[string]int64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		got[m[1]] = n
	}
	return got, sc.Err()
}

// compare checks every baseline entry against the measured allocs,
// writing verdicts to out and failures to errw; it reports whether
// the gate fails. Output is sorted by benchmark name so failures read
// the same run to run, and every missing benchmark is listed in one
// block together with the unmatched names the output did carry.
func compare(baseline, got map[string]int64, baselinePath string, out, errw io.Writer) bool {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	var missing []string
	for _, name := range names {
		base := baseline[name]
		allocs, ok := got[name]
		if !ok {
			missing = append(missing, name)
			failed = true
			continue
		}
		limit := int64(float64(base) * tolerance)
		switch {
		case allocs > limit:
			fmt.Fprintf(errw, "allocguard: %s regressed: %d allocs/op > %d (baseline %d +10%%)\n", name, allocs, limit, base)
			failed = true
		case float64(allocs) < float64(base)/tolerance:
			fmt.Fprintf(out, "allocguard: %s improved to %d allocs/op (baseline %d) — consider ratcheting the baseline down\n", name, allocs, base)
		default:
			fmt.Fprintf(out, "allocguard: %s ok: %d allocs/op (baseline %d, limit %d)\n", name, allocs, base, limit)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(errw, "allocguard: %d baseline benchmark(s) missing from the bench output:\n", len(missing))
		for _, name := range missing {
			fmt.Fprintf(errw, "allocguard:   %s\n", name)
		}
		if extra := unmatched(baseline, got); len(extra) > 0 {
			fmt.Fprintf(errw, "allocguard: the output did carry unmatched benchmark(s): %s\n", strings.Join(extra, ", "))
		}
		fmt.Fprintf(errw, "allocguard: rename the entries in %s if the benchmarks were renamed, or widen the -bench pattern if they no longer run\n", baselinePath)
	}
	return failed
}

// unmatched lists, sorted, the benchmarks measured in the output that
// no baseline entry names — the rename candidates.
func unmatched(baseline, got map[string]int64) []string {
	var extra []string
	for name := range got {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return extra
}

// readBaseline parses the committed baseline file: `name allocs` per
// line, #-comments and blanks skipped.
func readBaseline(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `BenchmarkName allocs`, got %q", path, ln, line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad allocs count %q", path, ln, fields[1])
		}
		out[fields[0]] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no baseline entries", path)
	}
	return out, nil
}
