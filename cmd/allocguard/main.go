// Command allocguard is the allocation-regression gate wired into
// `make bench-smoke`: it reads `go test -bench -benchmem` output on
// stdin, extracts allocs/op for each benchmark named in the committed
// baseline file, and exits 1 when any exceeds its baseline by more
// than the tolerance (10%). PR 9 cut JSON_TABLE expansion from ~302k
// to ~34k allocs/op; the guard keeps later PRs from silently giving
// that back.
//
// Usage:
//
//	go test -run '^$' -bench Fig3OLAPOSON -benchmem . | allocguard -baseline ALLOC_BASELINE.txt
//
// The baseline file holds one entry per line — `BenchmarkName allocs`
// — with #-comments and blank lines ignored. Every listed benchmark
// must appear in the input; a missing one fails the gate (a renamed
// or deleted benchmark should be renamed in the baseline too, not
// silently dropped). Improvements beyond the baseline print a hint to
// ratchet the committed number down.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// tolerance is how far above baseline allocs/op may drift before the
// gate fails: benchmarks allocate near-deterministically, so 10%
// absorbs pool warmup variance while catching any real regression.
const tolerance = 1.10

// benchLine matches one -benchmem result line, capturing the
// benchmark name (with any -N GOMAXPROCS suffix stripped) and its
// allocs/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+.*?(\d+)\s+allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "ALLOC_BASELINE.txt", "committed allocs/op baseline file")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(2)
	}

	got := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		got[m[1]] = n
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(2)
	}

	failed := false
	for name, base := range baseline {
		allocs, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "allocguard: %s not found in bench output (update %s if it was renamed)\n", name, *baselinePath)
			failed = true
			continue
		}
		limit := int64(float64(base) * tolerance)
		switch {
		case allocs > limit:
			fmt.Fprintf(os.Stderr, "allocguard: %s regressed: %d allocs/op > %d (baseline %d +10%%)\n", name, allocs, limit, base)
			failed = true
		case float64(allocs) < float64(base)/tolerance:
			fmt.Printf("allocguard: %s improved to %d allocs/op (baseline %d) — consider ratcheting the baseline down\n", name, allocs, base)
		default:
			fmt.Printf("allocguard: %s ok: %d allocs/op (baseline %d, limit %d)\n", name, allocs, base, limit)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// readBaseline parses the committed baseline file: `name allocs` per
// line, #-comments and blanks skipped.
func readBaseline(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `BenchmarkName allocs`, got %q", path, ln, line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad allocs count %q", path, ln, fields[1])
		}
		out[fields[0]] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no baseline entries", path)
	}
	return out, nil
}
