package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkFig3OLAPOSON-8   	     100	  12000000 ns/op	 5000000 B/op	   34000 allocs/op
BenchmarkExpandRenamed-8  	     100	   1000000 ns/op	  100000 B/op	    2000 allocs/op
PASS
`

func parse(t *testing.T, out string) map[string]int64 {
	t.Helper()
	got, err := parseBench(strings.NewReader(out), &strings.Builder{})
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return got
}

func TestParseBenchStripsProcSuffix(t *testing.T) {
	got := parse(t, benchOutput)
	if got["BenchmarkFig3OLAPOSON"] != 34000 {
		t.Errorf("BenchmarkFig3OLAPOSON = %d, want 34000", got["BenchmarkFig3OLAPOSON"])
	}
	if len(got) != 2 {
		t.Errorf("parsed %d benchmarks, want 2", len(got))
	}
}

func TestCompareOKAndImproved(t *testing.T) {
	baseline := map[string]int64{"BenchmarkFig3OLAPOSON": 34000, "BenchmarkExpandRenamed": 34000}
	var out, errw strings.Builder
	if compare(baseline, parse(t, benchOutput), "ALLOC_BASELINE.txt", &out, &errw) {
		t.Fatalf("gate failed on in-tolerance run:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFig3OLAPOSON ok") {
		t.Errorf("missing ok verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ratcheting the baseline down") {
		t.Errorf("missing improvement hint for the 2000-alloc result:\n%s", out.String())
	}
}

func TestCompareRegression(t *testing.T) {
	baseline := map[string]int64{"BenchmarkFig3OLAPOSON": 20000}
	var out, errw strings.Builder
	if !compare(baseline, parse(t, benchOutput), "ALLOC_BASELINE.txt", &out, &errw) {
		t.Fatal("34000 allocs against a 20000 baseline must fail")
	}
	if !strings.Contains(errw.String(), "regressed: 34000 allocs/op") {
		t.Errorf("missing regression message:\n%s", errw.String())
	}
}

func TestCompareMissingBenchmarksListed(t *testing.T) {
	baseline := map[string]int64{
		"BenchmarkExpandOld":    2000, // renamed in the output
		"BenchmarkFig3OLAPOSON": 34000,
		"BenchmarkGone":         10,
	}
	var out, errw strings.Builder
	if !compare(baseline, parse(t, benchOutput), "base.txt", &out, &errw) {
		t.Fatal("missing benchmarks must fail the gate")
	}
	msg := errw.String()
	for _, w := range []string{
		"2 baseline benchmark(s) missing from the bench output",
		"allocguard:   BenchmarkExpandOld",
		"allocguard:   BenchmarkGone",
		"unmatched benchmark(s): BenchmarkExpandRenamed",
		"rename the entries in base.txt",
	} {
		if !strings.Contains(msg, w) {
			t.Errorf("missing %q in:\n%s", w, msg)
		}
	}
	// the listing must come out sorted, in one block
	if strings.Index(msg, "BenchmarkExpandOld") > strings.Index(msg, "BenchmarkGone") {
		t.Errorf("missing-benchmark listing not sorted:\n%s", msg)
	}
}
