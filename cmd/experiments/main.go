// Command experiments regenerates every table and figure of the
// paper's evaluation section (§6) and prints them as text tables.
//
// Usage:
//
//	experiments [flags] [table10|table11|table12|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all]
//
// Scale flags shrink or grow the document counts; the paper's absolute
// numbers used much larger collections, but §6 is explicit that only
// the ratios between approaches matter.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/workload"
)

var (
	fig3Docs = flag.Int("fig3-docs", 5000, "purchase orders for figures 3-4 (paper: 100k)")
	fig5Docs = flag.Int("fig5-docs", 3000, "NOBENCH docs for figures 5-6 (paper: 64M)")
	fig7Docs = flag.Int("fig7-docs", 10000, "docs for figures 7-8 (paper: 10k)")
	fig9Docs = flag.Int("fig9-docs", 5000, "docs for figure 9 (paper: 2M)")
	reps     = flag.Int("reps", 3, "repetitions per query (best time kept)")
	archive  = flag.Int("archive-tweets", 400, "tweets per TwitterMsgArchive document")
	readings = flag.Int("sensor-readings", 4000, "readings per SensorData document")
)

func main() {
	flag.Parse()
	workload.TwitterMsgArchiveTweets = *archive
	workload.SensorReadings = *readings

	what := "all"
	if flag.NArg() > 0 {
		what = strings.ToLower(flag.Arg(0))
	}
	run := func(name string, fn func() error) {
		if what != "all" && what != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var sizeRows []bench.SizeRow
	var segRows []bench.SegRow
	sizesOnce := func() error {
		if sizeRows != nil {
			return nil
		}
		var err error
		sizeRows, segRows, err = bench.Table10And11()
		return err
	}

	run("table10", func() error {
		if err := sizesOnce(); err != nil {
			return err
		}
		return printTable10(sizeRows)
	})
	run("table11", func() error {
		if err := sizesOnce(); err != nil {
			return err
		}
		return printTable11(segRows)
	})
	run("table12", func() error {
		rows, err := bench.Table12()
		if err != nil {
			return err
		}
		return printTable12(rows)
	})
	var fig3 *bench.Fig3Result
	fig3Once := func() error {
		if fig3 != nil {
			return nil
		}
		var err error
		fig3, err = bench.RunFig3(*fig3Docs, *reps)
		return err
	}
	run("fig3", func() error {
		if err := fig3Once(); err != nil {
			return err
		}
		return printFig3(fig3)
	})
	run("fig4", func() error {
		if err := fig3Once(); err != nil {
			return err
		}
		return printFig4(fig3)
	})
	run("fig5", func() error {
		res, err := bench.RunFig5(*fig5Docs, *reps)
		if err != nil {
			return err
		}
		return printFig5(res)
	})
	run("fig6", func() error {
		res, err := bench.RunFig6(*fig5Docs, *reps)
		if err != nil {
			return err
		}
		return printFig6(res)
	})
	run("fig7", func() error {
		res, err := bench.RunFig7(*fig7Docs)
		if err != nil {
			return err
		}
		return printFig7(res)
	})
	run("fig8", func() error {
		res, err := bench.RunFig8(*fig7Docs)
		if err != nil {
			return err
		}
		return printFig8(res)
	})
	run("fig9", func() error {
		res, err := bench.RunFig9(*fig9Docs)
		if err != nil {
			return err
		}
		return printFig9(res)
	})
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printTable10(rows []bench.SizeRow) error {
	fmt.Println("Table 10 — average document size by encoding (bytes)")
	w := tw()
	fmt.Fprintln(w, "collection\tdocs\tJSON text\tBSON\tOSON\tOSON/JSON")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Collection, r.Docs, r.AvgJSON, r.AvgBSON, r.AvgOSON,
			float64(r.AvgOSON)/float64(r.AvgJSON))
	}
	return w.Flush()
}

func printTable11(rows []bench.SegRow) error {
	fmt.Println("Table 11 — OSON three-segment size shares (%)")
	w := tw()
	fmt.Fprintln(w, "collection\tfield-id-name dict\ttree navigation\tleaf values")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Collection, r.DictPct, r.TreePct, r.ValPct)
	}
	return w.Flush()
}

func printTable12(rows []bench.DGRow) error {
	fmt.Println("Table 12 — JSON DataGuide statistics")
	w := tw()
	fmt.Fprintln(w, "collection\tdocs\tdistinct paths\tDMDV columns\tDMDV fan-out")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\n",
			r.Collection, r.Docs, r.DistinctPaths, r.DMDVColumns, r.FanOut)
	}
	return w.Flush()
}

func printFig3(res *bench.Fig3Result) error {
	fmt.Printf("Figure 3 — OLAP query times over %d purchase orders\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "query\trows\tJSON\tBSON\tOSON\tREL\tJSON/OSON")
	for qi := 0; qi < 9; qi++ {
		j := res.Times[bench.ModeJSON][qi]
		o := res.Times[bench.ModeOSON][qi]
		fmt.Fprintf(w, "Q%d\t%d\t%v\t%v\t%v\t%v\t%.1fx\n", qi+1, res.Rows[qi],
			j.Round(time.Microsecond),
			res.Times[bench.ModeBSON][qi].Round(time.Microsecond),
			o.Round(time.Microsecond),
			res.Times[bench.ModeREL][qi].Round(time.Microsecond),
			float64(j)/float64(o))
	}
	return w.Flush()
}

func printFig4(res *bench.Fig3Result) error {
	fmt.Printf("Figure 4 — storage size over %d purchase orders (bytes)\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "storage\tbytes\tvs REL")
	for _, m := range bench.AllModes {
		fmt.Fprintf(w, "%s\t%d\t%.2fx\n", m, res.Storage[m],
			float64(res.Storage[m])/float64(res.Storage[bench.ModeREL]))
	}
	return w.Flush()
}

func printFig5(res *bench.Fig5Result) error {
	fmt.Printf("Figure 5 — NOBENCH query times over %d documents\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "query\trows\tTEXT-MODE\tOSON-IMC-MODE\tspeedup")
	for qi := 0; qi < 11; qi++ {
		fmt.Fprintf(w, "Q%d\t%d\t%v\t%v\t%.1fx\n", qi+1, res.Rows[qi],
			res.TextTime[qi].Round(time.Microsecond),
			res.OsonTime[qi].Round(time.Microsecond),
			float64(res.TextTime[qi])/float64(res.OsonTime[qi]))
	}
	return w.Flush()
}

func printFig6(res *bench.Fig6Result) error {
	fmt.Printf("Figure 6 — OSON-IMC vs VC-IMC over %d documents\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "query\tOSON-IMC-MODE\tVC-IMC-MODE\tspeedup")
	for _, qi := range bench.Fig6Queries {
		fmt.Fprintf(w, "Q%d\t%v\t%v\t%.1fx\n", qi+1,
			res.OsonTime[qi].Round(time.Microsecond),
			res.VCTime[qi].Round(time.Microsecond),
			float64(res.OsonTime[qi])/float64(res.VCTime[qi]))
	}
	return w.Flush()
}

func printFig7(res *bench.Fig7Result) error {
	fmt.Printf("Figure 7 — insertion time for %d homogeneous documents\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "mode\ttime\toverhead vs no-check")
	base := float64(res.NoConstraint)
	fmt.Fprintf(w, "no-json-constraint\t%v\t-\n", res.NoConstraint.Round(time.Millisecond))
	fmt.Fprintf(w, "json-constraint\t%v\t%.1f%%\n",
		res.JSONConstraint.Round(time.Millisecond), 100*(float64(res.JSONConstraint)-base)/base)
	fmt.Fprintf(w, "json-constraint-dataguide\t%v\t%.1f%%\n",
		res.WithDataGuide.Round(time.Millisecond), 100*(float64(res.WithDataGuide)-base)/base)
	return w.Flush()
}

func printFig8(res *bench.Fig8Result) error {
	fmt.Printf("Figure 8 — insertion time with DataGuide, %d documents\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "collection\ttime\tvs homogeneous")
	fmt.Fprintf(w, "homogeneous\t%v\t1.0x\n", res.Homo.Round(time.Millisecond))
	fmt.Fprintf(w, "heterogeneous\t%v\t%.1fx\n", res.Hetero.Round(time.Millisecond),
		float64(res.Hetero)/float64(res.Homo))
	return w.Flush()
}

func printFig9(res *bench.Fig9Result) error {
	fmt.Printf("Figure 9 — transient DataGuide aggregation over %d documents\n", res.NDocs)
	w := tw()
	fmt.Fprintln(w, "computation\ttime")
	for i, pct := range res.SamplePcts {
		fmt.Fprintf(w, "transient sample(%d)\t%v\n", pct, res.Transient[i].Round(time.Millisecond))
	}
	fmt.Fprintf(w, "persistent (search index create)\t%v\n", res.Persistent.Round(time.Millisecond))
	return w.Flush()
}
