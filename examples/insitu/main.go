// In-situ schema discovery (§3.4): compute a transient DataGuide over
// JSON files that were never loaded into the database — the paper's
// external-table scenario where JSON_DATAGUIDEAGG runs over any
// source of documents, then a DMDV view makes them queryable.
//
// The example writes a small directory of heterogeneous JSON files,
// discovers their implied schema, prints both DataGuide forms, and
// generates the relational view DDL an analyst would use.
//
// Run with: go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/viewgen"
)

func main() {
	dir, err := os.MkdirTemp("", "fsdm-insitu-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// an external drop-zone of heterogeneous event files
	files := map[string]string{
		"e1.json": `{"event":{"kind":"click","ts":"2016-06-26T10:00:00Z","user":{"id":7,"tier":"gold"}}}`,
		"e2.json": `{"event":{"kind":"purchase","ts":"2016-06-26T10:05:00Z","user":{"id":9},
		             "lines":[{"sku":"A1","qty":2},{"sku":"B7","qty":1}]}}`,
		"e3.json": `{"event":{"kind":"click","ts":"2016-06-26T11:00:00Z","user":{"id":7},
		             "referrer":"https://example.com"}}`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("external directory %s holds %d JSON files\n\n", dir, len(files))

	// in-situ: stream the files through the DataGuide aggregator
	// without storing them anywhere
	guide := dataguide.New()
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, de := range entries {
		text, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := guide.AddText(text); err != nil {
			log.Fatalf("%s: %v", de.Name(), err)
		}
	}

	fmt.Println("flat DataGuide (the $DG form):")
	for _, e := range guide.Entries() {
		fmt.Printf("  %-28s %-16s freq=%d\n", e.Path, e.TypeString(), e.Frequency)
	}
	fmt.Printf("\nhierarchical DataGuide:\n%s\n\n", guide.HierarchicalJSON())

	// load into a collection and query it relationally via a generated
	// view — discovery and query share one schema source
	db := core.Open()
	col, err := db.CreateCollection("events")
	if err != nil {
		log.Fatal(err)
	}
	for _, de := range entries {
		text, _ := os.ReadFile(filepath.Join(dir, de.Name()))
		if _, err := col.PutText(string(text)); err != nil {
			log.Fatal(err)
		}
	}
	ddl, err := viewgen.CreateViewOnPath(db.SQL(), "events_v", "events", core.DocColumn,
		guide, viewgen.ViewOptions{KeyColumns: []string{core.KeyColumn}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated view:\n%s\n\n", ddl)

	res, err := db.Query(`select "jdoc$kind", count(*) from events_v group by "jdoc$kind" order by 2 desc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("events by kind:")
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
}
