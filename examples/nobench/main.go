// NOBENCH and the dual-format in-memory store (§6.4): documents are
// stored as JSON text "on disk", then transparently accelerated by
// populating the in-memory store — first with OSON documents
// (OSON-IMC), then with columnar virtual columns (VC-IMC). The same
// SQL runs in all three modes; only the speed changes.
//
// Run with: go run ./examples/nobench [-docs 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	docs := flag.Int("docs", 2000, "number of NOBENCH documents")
	flag.Parse()

	fmt.Printf("loading %d NOBENCH documents (11 common fields, %d sparse fields)...\n",
		*docs, workload.NoBenchSparseTotal)
	env, err := bench.SetupNoBench(*docs)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) []time.Duration {
		fmt.Printf("\n%s:\n", label)
		out := make([]time.Duration, 11)
		for qi := 0; qi < 11; qi++ {
			d, rows, err := env.RunQuery(qi)
			if err != nil {
				log.Fatal(err)
			}
			out[qi] = d
			fmt.Printf("  Q%-2d %12s  (%d rows)\n", qi+1, d.Round(time.Microsecond), rows)
		}
		return out
	}

	text := measure("TEXT-MODE (parse JSON text per document)")

	if err := env.EnableOSONIMC(); err != nil {
		log.Fatal(err)
	}
	osn := measure("OSON-IMC-MODE (navigate in-memory OSON)")

	if err := env.EnableVCIMC(); err != nil {
		log.Fatal(err)
	}
	vc := measure("VC-IMC-MODE (columnar virtual columns for $.str1, $.num, $.dyn1)")

	fmt.Println("\nspeedups vs TEXT-MODE:")
	for qi := 0; qi < 11; qi++ {
		fmt.Printf("  Q%-2d  OSON-IMC %5.1fx   VC-IMC %5.1fx\n", qi+1,
			text[qi].Seconds()/osn[qi].Seconds(),
			text[qi].Seconds()/vc[qi].Seconds())
	}
}
