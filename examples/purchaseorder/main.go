// OLAP over purchase orders across the four storage modes of §6.3:
// the same nine analyst queries (Table 13) run against JSON text,
// BSON, OSON and relationally decomposed storage, behind identical
// po_mv / po_item_dmdv views — the views are the abstraction that
// hides the physical model.
//
// Run with: go run ./examples/purchaseorder [-docs 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
)

func main() {
	docs := flag.Int("docs", 2000, "number of purchase orders")
	flag.Parse()

	fmt.Printf("loading %d purchase orders into 4 storage modes...\n\n", *docs)
	envs := map[bench.StorageMode]*bench.OLAPEnv{}
	for _, mode := range bench.AllModes {
		env, err := bench.SetupOLAP(mode, *docs)
		if err != nil {
			log.Fatal(err)
		}
		envs[mode] = env
		fmt.Printf("  %-5s storage: %8d bytes\n", mode, env.StorageBytes)
	}

	fmt.Println("\nTable 13 queries (time | rows):")
	fmt.Printf("%-5s %14s %14s %14s %14s\n", "query", "JSON", "BSON", "OSON", "REL")
	for qi := 0; qi < 9; qi++ {
		fmt.Printf("Q%-4d", qi+1)
		var rows int
		for _, mode := range bench.AllModes {
			d, n, err := envs[mode].RunQuery(qi)
			if err != nil {
				log.Fatal(err)
			}
			rows = n
			fmt.Printf(" %14s", d.Round(time.Microsecond))
		}
		fmt.Printf("   (%d rows)\n", rows)
	}

	fmt.Println("\nsample: top cost centers by revenue (Q7 variant, OSON storage):")
	res, err := envs[bench.ModeOSON].Eng.Exec(`
		select costcenter, sum(quantity * unitprice) as revenue
		from po_item_dmdv group by costcenter order by 2 desc limit 5`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
}
