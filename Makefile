# Development targets. `make check` is the pre-commit gate: build,
# vet, the fsdmvet invariant checkers, tests, and the godoc lint.
# `make race` runs the race detector over the whole tree plus the
# concurrent engine packages (imc, pathengine, sqlengine parallel
# operators); CI runs it as its own job so analyzer findings and
# data races fail independently.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet lint fuzz doccheck bench-smoke bench-json check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/imc
	$(GO) test -race -count=1 ./internal/pathengine
	$(GO) test -race -count=1 -run 'TestParExec|TestParallelScan' ./internal/sqlengine

vet:
	$(GO) vet ./...

# Project-specific invariant checkers (cancelcheck, immutcheck,
# metriccheck, lockcheck, errwrapcheck) over every module package.
# See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/fsdmvet

# Short fuzz pass over every fuzz target. Go refuses -fuzz with more
# than one match per package, so targets are enumerated explicitly.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME) ./internal/oson
	$(GO) test -fuzz=FuzzEncodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/oson
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/jsontext
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/jsonpath
	$(GO) test -fuzz=FuzzParseStatement -fuzztime=$(FUZZTIME) ./internal/sqlengine
	$(GO) test -fuzz=FuzzSketchMerge -fuzztime=$(FUZZTIME) ./internal/dataguide

# Godoc lint: every exported identifier in internal/ and cmd/ needs a
# doc comment, and every package a package comment.
doccheck:
	$(GO) run ./cmd/doccheck

# One iteration of every benchmark: catches bit-rot in the benchmark
# harnesses without paying for full measurement runs. The second step
# is the allocation-regression gate: BenchmarkFig3OLAPOSON allocs/op
# must stay within 10% of the committed ALLOC_BASELINE.txt figure, so
# the PR9 expansion-allocation work cannot silently erode.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench 'Fig3OLAPOSON$$' -benchtime 5x -benchmem . | $(GO) run ./cmd/allocguard -baseline ALLOC_BASELINE.txt

# Benchmark run emitting the test2json machine-readable event stream
# (one JSON object per line, ns/op and -benchmem allocs/op both
# captured) for dashboards and regression tooling. The Fig3/Fig5/Fig6
# query benchmarks — the ones the scan, plan, batch-spine,
# parallel-operator, and expansion work moves — are captured to
# BENCH_PR9.json as the repo's current perf trajectory checkpoint
# (BENCH_PR8.json is the previous one; compare the two for the
# JSON_TABLE expansion-vectorization delta: Fig3 OSON ~302k → ~34k
# allocs/op).
bench-json:
	$(GO) test -run '^$$' -bench 'Fig[356]' -benchmem -json . | tee BENCH_PR9.json
	$(GO) test -run '^$$' -bench 'Table|Fig[4789]' -benchmem -json .

check: build vet lint test doccheck bench-smoke
