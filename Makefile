# Development targets. `make check` is the full pre-commit gate:
# build, vet, the fsdmvet invariant checkers, tests, the race
# detector over the concurrent scan paths, and the godoc lint.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet lint fuzz doccheck bench-smoke bench-json check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/imc
	$(GO) test -race -count=1 -run 'TestParExec|TestParallelScan' ./internal/sqlengine

vet:
	$(GO) vet ./...

# Project-specific invariant checkers (cancelcheck, immutcheck,
# metriccheck, lockcheck, errwrapcheck) over every module package.
# See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/fsdmvet

# Short fuzz pass over every fuzz target. Go refuses -fuzz with more
# than one match per package, so targets are enumerated explicitly.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME) ./internal/oson
	$(GO) test -fuzz=FuzzEncodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/oson
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/jsontext
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/jsonpath
	$(GO) test -fuzz=FuzzParseStatement -fuzztime=$(FUZZTIME) ./internal/sqlengine
	$(GO) test -fuzz=FuzzSketchMerge -fuzztime=$(FUZZTIME) ./internal/dataguide

# Godoc lint: every exported identifier in internal/ and cmd/ needs a
# doc comment, and every package a package comment.
doccheck:
	$(GO) run ./cmd/doccheck

# One iteration of every benchmark: catches bit-rot in the benchmark
# harnesses without paying for full measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark run emitting the test2json machine-readable event stream
# (one JSON object per line) for dashboards and regression tooling.
# The Fig3/Fig5/Fig6 query benchmarks — the ones the scan, plan,
# batch-spine, and parallel-operator work moves — are captured to
# BENCH_PR8.json as the repo's current perf trajectory checkpoint
# (BENCH_PR6.json is the previous one; compare the two for the
# morsel-driven parallelism delta, keeping in mind the parallel arms
# only beat serial on multi-core hardware).
bench-json:
	$(GO) test -run '^$$' -bench 'Fig[356]' -benchmem -json . | tee BENCH_PR8.json
	$(GO) test -run '^$$' -bench 'Table|Fig[4789]' -benchmem -json .

check: build vet lint test race doccheck bench-smoke
